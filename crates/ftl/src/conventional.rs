//! The baseline page-mapping FTL.

use crate::base::FtlBase;
use crate::config::FtlConfig;
use crate::traits::Ftl;
use crate::{FtlStats, GcVictim, Result};
use bytes::Bytes;
use insider_nand::{Lba, NandStats, SimTime};

/// A conventional page-level mapping FTL with greedy garbage collection.
///
/// This is the paper's comparison baseline ("Conventional SSD" in Fig. 9 and
/// "FTL code" in Fig. 8): overwritten pages are invalidated immediately and
/// reclaimed by the next garbage collection that picks their block, so no
/// old data survives and no rollback is possible.
///
/// # Example
///
/// ```rust
/// use insider_ftl::{ConventionalFtl, Ftl, FtlConfig};
/// use insider_nand::{Geometry, Lba, SimTime};
/// use bytes::Bytes;
///
/// # fn main() -> Result<(), insider_ftl::FtlError> {
/// let mut ftl = ConventionalFtl::new(FtlConfig::new(Geometry::tiny()));
/// ftl.write(Lba::new(0), Bytes::from_static(b"hello"), SimTime::ZERO)?;
/// assert_eq!(ftl.read(Lba::new(0), SimTime::ZERO)?.unwrap().as_ref(), b"hello");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ConventionalFtl {
    base: FtlBase,
}

impl ConventionalFtl {
    /// Creates an empty drive with the given configuration.
    pub fn new(config: FtlConfig) -> Self {
        ConventionalFtl {
            base: FtlBase::new(config),
        }
    }

    /// The configuration this drive was built with.
    pub fn config(&self) -> &FtlConfig {
        self.base.config()
    }

    /// Number of blocks currently in the free pool.
    pub fn free_blocks(&self) -> usize {
        self.base.free_blocks()
    }

    /// Installs a deterministic NAND fault plan; scheduled operations fail
    /// with [`NandError::InjectedFault`](insider_nand::NandError::InjectedFault).
    pub fn set_fault_plan(&mut self, plan: insider_nand::FaultPlan) {
        self.base.set_fault_plan(plan);
    }

    /// NAND busy time as `(serial sum, per-channel-parallel makespan)` —
    /// the parallel figure is the device-level time a multi-channel
    /// controller would take.
    pub fn nand_busy_ns(&self) -> (u64, u64) {
        self.base.nand_busy_ns()
    }

    /// Per-chip and per-channel-bus busy vectors, for phase-delta analyses.
    pub fn nand_busy_detail(&self) -> (Vec<u64>, Vec<u64>) {
        self.base.nand_busy_detail()
    }

    /// OOB records decoded by the most recent mount scan (zero before any
    /// power cycle).
    pub fn mount_scan_entries(&self) -> u64 {
        self.base.mount_scan_entries()
    }

    /// Records held by the checkpoint chain index (zero unless periodic
    /// checkpointing is enabled) — the DRAM cost of fast remounts.
    pub fn chain_index_entries(&self) -> u64 {
        self.base.chain_index_entries()
    }

    /// Reads promoted past queued mutations by the out-of-order scheduler.
    pub fn reads_promoted(&self) -> u64 {
        self.base.device.reads_promoted()
    }

    /// Drains and returns the captured command log (empty unless configured
    /// with `FtlConfig::capture_commands(true)`).
    pub fn take_captured_commands(&mut self) -> Vec<insider_nand::CmdRecord> {
        self.base.device.take_captured_commands()
    }

    /// Read-only view of the raw NAND device, for physical-state oracles
    /// (page states, OOB records, scheduler makespans).
    pub fn device(&self) -> &insider_nand::NandDevice {
        &self.base.device
    }

    /// Per-GC-entry foreground pause percentiles (device makespan growth
    /// per GC entry, blocking or incremental).
    pub fn gc_pause_latency(&self) -> insider_nand::KindLatency {
        self.base.gc_pause_latency()
    }

    /// Whether an incremental GC job is paused mid-block.
    pub fn gc_job_pending(&self) -> bool {
        self.base.gc_job_pending()
    }

    /// Runs any paused incremental GC job to completion (quiescence helper
    /// for differential oracles and benchmarks).
    ///
    /// # Errors
    ///
    /// Propagates NAND failures from the drained migrations.
    pub fn gc_quiesce(&mut self) -> Result<()> {
        self.base.gc_drain_job(None)
    }
}

impl Ftl for ConventionalFtl {
    fn write(&mut self, lba: Lba, data: Bytes, now: SimTime) -> Result<()> {
        self.base.set_clock(now);
        self.base.check_lba(lba)?;
        self.base.gc_before_write(0, None)?;
        let old = self.base.program_mapped(lba, data, now)?;
        if let Some(old) = old {
            self.base.invalidate(old)?;
        }
        self.base.stats.host_writes += 1;
        self.base.maybe_checkpoint(now)?;
        Ok(())
    }

    fn read(&mut self, lba: Lba, now: SimTime) -> Result<Option<Bytes>> {
        self.base.set_clock(now);
        self.base.check_lba(lba)?;
        let data = self.base.read_mapped(lba)?;
        self.base.stats.host_reads += 1;
        Ok(data)
    }

    fn trim(&mut self, lba: Lba, now: SimTime) -> Result<()> {
        self.base.set_clock(now);
        self.base.check_lba(lba)?;
        if let Some(old) = self.base.mapping.set(lba, None) {
            self.base.invalidate(old)?;
        }
        self.base.stats.host_trims += 1;
        Ok(())
    }

    fn read_extent(&mut self, lba: Lba, len: u32, now: SimTime) -> Result<Vec<Option<Bytes>>> {
        self.base.set_clock(now);
        self.base.check_extent(lba, len)?;
        let out = self.base.read_extent_mapped(lba, len)?;
        self.base.stats.host_reads += len as u64;
        Ok(out)
    }

    fn write_extent(&mut self, lba: Lba, data: &[Bytes], now: SimTime) -> Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        self.base.set_clock(now);
        self.base.check_extent(lba, data.len() as u32)?;
        self.base.gc_before_write(data.len() as u64, None)?;
        self.base.program_extent_mapped(lba, data, now, None)?;
        self.base.maybe_checkpoint(now)
    }

    fn power_cut(&mut self, now: SimTime) -> Result<()> {
        self.base.set_clock(now);
        self.base.remount()?;
        Ok(())
    }

    fn trim_extent(&mut self, lba: Lba, len: u32, now: SimTime) -> Result<()> {
        if len == 0 {
            return Ok(());
        }
        self.base.set_clock(now);
        self.base.check_extent(lba, len)?;
        self.base.unmap_extent(lba, len)?;
        Ok(())
    }

    fn sync(&mut self) {
        self.base.sync_device();
    }

    fn latency_snapshot(&self) -> Option<insider_nand::LatencySnapshot> {
        self.base.latency_snapshot()
    }

    fn host_latency_snapshot(&self) -> Option<insider_nand::LatencySnapshot> {
        self.base.host_latency_snapshot()
    }

    fn gc_debt(&self) -> f64 {
        self.base.gc_debt()
    }

    fn stats(&self) -> &FtlStats {
        &self.base.stats
    }

    fn nand_stats(&self) -> &NandStats {
        self.base.device.stats()
    }

    fn logical_pages(&self) -> u64 {
        self.base.logical_pages()
    }

    fn utilization(&self) -> f64 {
        self.base.mapping.utilization()
    }

    fn wear_summary(&self) -> (u32, u32, f64) {
        self.base.device.wear_summary()
    }

    fn gc_victims(&self) -> &[GcVictim] {
        self.base.gc_victims()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insider_nand::Geometry;

    fn ftl() -> ConventionalFtl {
        ConventionalFtl::new(FtlConfig::new(Geometry::tiny()))
    }

    #[test]
    fn write_read_round_trip() {
        let mut f = ftl();
        f.write(Lba::new(1), Bytes::from_static(b"data"), SimTime::ZERO)
            .unwrap();
        assert_eq!(
            f.read(Lba::new(1), SimTime::ZERO)
                .unwrap()
                .unwrap()
                .as_ref(),
            b"data"
        );
        assert_eq!(f.stats().host_writes, 1);
        assert_eq!(f.stats().host_reads, 1);
    }

    #[test]
    fn unmapped_read_is_none() {
        let mut f = ftl();
        assert_eq!(f.read(Lba::new(0), SimTime::ZERO).unwrap(), None);
    }

    #[test]
    fn overwrite_replaces_data() {
        let mut f = ftl();
        let lba = Lba::new(2);
        f.write(lba, Bytes::from_static(b"v1"), SimTime::ZERO)
            .unwrap();
        f.write(lba, Bytes::from_static(b"v2"), SimTime::ZERO)
            .unwrap();
        assert_eq!(f.read(lba, SimTime::ZERO).unwrap().unwrap().as_ref(), b"v2");
    }

    #[test]
    fn trim_unmaps() {
        let mut f = ftl();
        let lba = Lba::new(2);
        f.write(lba, Bytes::from_static(b"v1"), SimTime::ZERO)
            .unwrap();
        f.trim(lba, SimTime::ZERO).unwrap();
        assert_eq!(f.read(lba, SimTime::ZERO).unwrap(), None);
        assert_eq!(f.stats().host_trims, 1);
    }

    #[test]
    fn sustained_overwrites_trigger_gc_without_data_loss() {
        let mut f = ftl();
        // Working set of 8 pages overwritten many times; device has 256 pages.
        for round in 0..200u32 {
            for i in 0..8u64 {
                let payload = Bytes::copy_from_slice(format!("{round}:{i}").as_bytes());
                f.write(Lba::new(i), payload, SimTime::ZERO).unwrap();
            }
        }
        assert!(f.stats().gc_invocations > 0);
        assert_eq!(f.stats().gc_protected_copies, 0, "baseline never protects");
        for i in 0..8u64 {
            assert_eq!(
                f.read(Lba::new(i), SimTime::ZERO)
                    .unwrap()
                    .unwrap()
                    .as_ref(),
                format!("199:{i}").as_bytes()
            );
        }
    }

    #[test]
    fn out_of_range_lba_rejected() {
        let mut f = ftl();
        let max = f.logical_pages();
        assert!(f
            .write(Lba::new(max), Bytes::from_static(b"x"), SimTime::ZERO)
            .is_err());
        assert!(f.read(Lba::new(max), SimTime::ZERO).is_err());
        assert!(f.trim(Lba::new(max), SimTime::ZERO).is_err());
    }

    #[test]
    fn extent_ops_match_scalar_decomposition() {
        let mut scalar = ftl();
        let mut extent = ftl();
        let payloads: Vec<Bytes> = (0..6)
            .map(|i| Bytes::copy_from_slice(format!("pg{i}").as_bytes()))
            .collect();
        for (i, p) in payloads.iter().enumerate() {
            scalar
                .write(Lba::new(3 + i as u64), p.clone(), SimTime::ZERO)
                .unwrap();
        }
        extent
            .write_extent(Lba::new(3), &payloads, SimTime::ZERO)
            .unwrap();
        let scalar_read: Vec<Option<Bytes>> = (0..8)
            .map(|i| scalar.read(Lba::new(2 + i), SimTime::ZERO).unwrap())
            .collect();
        let extent_read = extent.read_extent(Lba::new(2), 8, SimTime::ZERO).unwrap();
        assert_eq!(scalar_read, extent_read);
        assert_eq!(scalar.stats(), extent.stats());
        assert_eq!(scalar.nand_stats(), extent.nand_stats());

        for i in 0..4u64 {
            scalar.trim(Lba::new(3 + i), SimTime::ZERO).unwrap();
        }
        extent.trim_extent(Lba::new(3), 4, SimTime::ZERO).unwrap();
        assert_eq!(scalar.stats(), extent.stats());
        assert_eq!(
            extent.read_extent(Lba::new(3), 4, SimTime::ZERO).unwrap(),
            vec![None; 4]
        );
    }

    #[test]
    fn extent_bounds_checked_once_up_front() {
        let mut f = ftl();
        let max = f.logical_pages();
        let err = f.write_extent(
            Lba::new(max - 1),
            &[Bytes::from_static(b"a"), Bytes::from_static(b"b")],
            SimTime::ZERO,
        );
        assert!(err.is_err());
        assert_eq!(
            f.stats().host_writes,
            0,
            "nothing applied on a straddling extent"
        );
        assert_eq!(
            f.read(Lba::new(max - 1), SimTime::ZERO).unwrap(),
            None,
            "in-range prefix not written either"
        );
        assert!(f.read_extent(Lba::new(max - 1), 2, SimTime::ZERO).is_err());
        assert!(f.trim_extent(Lba::new(max - 1), 2, SimTime::ZERO).is_err());
    }

    #[test]
    fn empty_extents_are_no_ops() {
        let mut f = ftl();
        f.write_extent(Lba::new(0), &[], SimTime::ZERO).unwrap();
        f.trim_extent(Lba::new(0), 0, SimTime::ZERO).unwrap();
        assert!(f
            .read_extent(Lba::new(0), 0, SimTime::ZERO)
            .unwrap()
            .is_empty());
        assert_eq!(
            f.stats().host_writes + f.stats().host_trims + f.stats().host_reads,
            0
        );
    }

    #[test]
    fn utilization_tracks_mapped_pages() {
        let mut f = ftl();
        assert_eq!(f.utilization(), 0.0);
        f.write(Lba::new(0), Bytes::from_static(b"x"), SimTime::ZERO)
            .unwrap();
        assert!(f.utilization() > 0.0);
    }
}
