//! Mapping-table checkpoints: the persistent snapshot `FtlBase` writes to
//! the NAND checkpoint slots so a power-on mount can skip re-scanning the
//! spare areas of pages that were already on flash at checkpoint time.
//!
//! # What a checkpoint holds
//!
//! A checkpoint is **not** a copy of the mapping table. It snapshots the
//! inputs of the mount algorithm instead — the per-LBA OOB record chains,
//! horizon-filtered (see below), plus per-block scan baselines — so the
//! mount path can merge `checkpoint + OOB tail` and feed the *exact same*
//! reconstruction code the full scan feeds. That keeps one recovery
//! algorithm (and one differential oracle) instead of two.
//!
//! * **Header** — format magic/version, the device program-sequence
//!   watermark at write time (newest-slot selection), the anchor stamp and
//!   the retention horizon, record/block counts, and a CRC32 over the body.
//! * **Per-block baselines** — erase count, programmed-page watermark and
//!   minimum OOB sequence number of every block. The mount tail-scan skips
//!   pages below the watermark of blocks whose erase count is unchanged and
//!   fully rescans blocks that were erased since (their checkpointed
//!   records are dropped — flash is the truth for recycled blocks).
//! * **Records** — the horizon-filtered chains, 33 bytes per record.
//!
//! # The horizon filter
//!
//! Records older than `horizon = anchor − protection_window` can no longer
//! influence the recovery queue a mount rebuilds, with two exceptions per
//! logical page, both kept: the freshest pre-horizon record by
//! `(stamp, seq)` (the representative of the newest already-safe version —
//! the predecessor a rebuilt queue entry may need), and the freshest *live*
//! pre-horizon record by `seq` (the mount winner when no in-window version
//! exists — after a trim plus GC relocation these can be different
//! records). The filter is idempotent for any horizon that only moves
//! forward, so chains reloaded from a checkpoint can be re-filtered and
//! re-checkpointed without losing reconstruction fidelity.
//!
//! # Crash safety
//!
//! Checkpoints ping-pong between the device's two slots: a write always
//! targets the slot *not* holding the newest valid checkpoint. A power cut
//! before the slot erase leaves both old checkpoints intact; a cut
//! mid-write leaves a torn page sequence whose CRC cannot validate, and the
//! mount falls back to the surviving slot — or to a full scan when neither
//! slot decodes.

use crate::base::ScanPage;
use bytes::Bytes;
use insider_nand::{Lba, Ppa, SimTime};
use std::collections::BTreeMap;

/// Format magic: "ICKP" (insider checkpoint), little-endian.
const MAGIC: u32 = 0x504b_4349;
/// Format version; bump on any layout change.
const VERSION: u32 = 1;
/// Header length in bytes (see `encode` for the field layout).
const HEADER_LEN: usize = 44;
/// Per-block baseline length in bytes.
const BLOCK_LEN: usize = 16;
/// Per-record length in bytes.
const RECORD_LEN: usize = 33;

/// Per-block scan baseline captured at checkpoint time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct BlockMeta {
    /// Erase count at checkpoint time; a mismatch at mount means the block
    /// was recycled and must be fully rescanned.
    pub erase_count: u32,
    /// Programmed-page watermark (`write_ptr`) at checkpoint time; the
    /// mount tail-scan starts here for unchanged blocks.
    pub programmed: u32,
    /// Minimum OOB sequence number over every record in the block, `None`
    /// when the block held no tagged pages. Carried in full fidelity (the
    /// horizon filter may drop the record that held the minimum).
    pub min_seq: Option<u64>,
}

/// A decoded (or to-be-encoded) checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Checkpoint {
    /// Device program-sequence watermark at write time; the mount picks
    /// the valid slot with the highest watermark.
    pub seq: u64,
    /// The anchor instant the checkpoint was written at.
    pub stamp: SimTime,
    /// Retention horizon the record chains were filtered with.
    pub horizon: SimTime,
    /// One baseline per block, indexed by raw block number.
    pub blocks: Vec<BlockMeta>,
    /// Horizon-filtered chains, flattened: sorted by logical page, then by
    /// `(stamp, seq)` within each page's run — the mount's canonical order,
    /// so the checkpoint+tail merge is a linear two-way merge instead of a
    /// global re-sort. A flat vector keeps the decode path allocation-free
    /// per record — the mount merges several hundred thousand of these, so
    /// per-chain containers would dominate the remount wall clock.
    pub records: Vec<(Lba, ScanPage)>,
}

impl Checkpoint {
    /// Serializes the checkpoint into page-sized chunks ready for
    /// `NandDevice::ckpt_append`.
    pub fn encode(&self, page_size: usize) -> Vec<Bytes> {
        let record_count = self.records.len();
        let mut body =
            Vec::with_capacity(self.blocks.len() * BLOCK_LEN + record_count * RECORD_LEN);
        for b in &self.blocks {
            body.extend_from_slice(&b.erase_count.to_le_bytes());
            body.extend_from_slice(&b.programmed.to_le_bytes());
            // min_seq is stored +1 so zero can mean "no tagged pages"
            // (sequence numbers themselves start at 1).
            body.extend_from_slice(&b.min_seq.map_or(0, |s| s + 1).to_le_bytes());
        }
        for (lba, p) in &self.records {
            body.extend_from_slice(&lba.index().to_le_bytes());
            body.extend_from_slice(&p.ppa.index().to_le_bytes());
            body.extend_from_slice(&p.seq.to_le_bytes());
            body.extend_from_slice(&p.stamp.as_micros().to_le_bytes());
            body.push(u8::from(p.live));
        }
        let mut out = Vec::with_capacity(HEADER_LEN + body.len());
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.stamp.as_micros().to_le_bytes());
        out.extend_from_slice(&self.horizon.as_micros().to_le_bytes());
        out.extend_from_slice(&(self.blocks.len() as u32).to_le_bytes());
        out.extend_from_slice(&(record_count as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&body).to_le_bytes());
        out.extend_from_slice(&body);
        out.chunks(page_size).map(Bytes::copy_from_slice).collect()
    }

    /// The sequence watermark claimed by a slot's header, without paying
    /// for body reassembly or the CRC. Used only to order slot *attempts* —
    /// a torn slot can claim any watermark, so the caller must still fully
    /// [`decode`](Self::decode) before trusting it.
    pub fn peek_seq(pages: &[Bytes]) -> Option<u64> {
        let mut header = Vec::with_capacity(HEADER_LEN);
        for p in pages {
            header.extend_from_slice(&p[..p.len().min(HEADER_LEN - header.len())]);
            if header.len() == HEADER_LEN {
                break;
            }
        }
        if header.len() < HEADER_LEN {
            return None;
        }
        let u32_at = |i: usize| u32::from_le_bytes(header[i..i + 4].try_into().unwrap());
        if u32_at(0) != MAGIC || u32_at(4) != VERSION {
            return None;
        }
        Some(u64::from_le_bytes(header[8..16].try_into().unwrap()))
    }

    /// Reassembles and validates a checkpoint from the pages of one slot.
    /// Returns `None` for an empty slot, a torn write (short body), a
    /// foreign or future format, or a CRC mismatch — the caller falls back
    /// to the other slot or to a full scan.
    pub fn decode(pages: &[Bytes]) -> Option<Checkpoint> {
        let mut raw = Vec::with_capacity(pages.iter().map(Bytes::len).sum());
        for p in pages {
            raw.extend_from_slice(p);
        }
        if raw.len() < HEADER_LEN {
            return None;
        }
        let u32_at = |i: usize| u32::from_le_bytes(raw[i..i + 4].try_into().unwrap());
        let u64_at = |i: usize| u64::from_le_bytes(raw[i..i + 8].try_into().unwrap());
        if u32_at(0) != MAGIC || u32_at(4) != VERSION {
            return None;
        }
        let seq = u64_at(8);
        let stamp = SimTime::from_micros(u64_at(16));
        let horizon = SimTime::from_micros(u64_at(24));
        let block_count = u32_at(32) as usize;
        let record_count = u32_at(36) as usize;
        let body_len = block_count * BLOCK_LEN + record_count * RECORD_LEN;
        // The last page is zero-padded up to page size by nothing — appends
        // store exact chunks — so the total length must match exactly.
        if raw.len() != HEADER_LEN + body_len {
            return None;
        }
        let body = &raw[HEADER_LEN..];
        if crc32(body) != u32_at(40) {
            return None;
        }
        let mut blocks = Vec::with_capacity(block_count);
        for i in 0..block_count {
            let at = i * BLOCK_LEN;
            let min_raw = u64::from_le_bytes(body[at + 8..at + 16].try_into().unwrap());
            blocks.push(BlockMeta {
                erase_count: u32::from_le_bytes(body[at..at + 4].try_into().unwrap()),
                programmed: u32::from_le_bytes(body[at + 4..at + 8].try_into().unwrap()),
                min_seq: min_raw.checked_sub(1),
            });
        }
        let mut records = Vec::with_capacity(record_count);
        // chunks_exact lets the optimizer hoist the bounds checks out of
        // the per-field reads — this loop runs a few hundred thousand times
        // per mount.
        for rec in body[block_count * BLOCK_LEN..].chunks_exact(RECORD_LEN) {
            let f = |o: usize| u64::from_le_bytes(rec[o..o + 8].try_into().unwrap());
            records.push((
                Lba::new(f(0)),
                ScanPage {
                    ppa: Ppa::new(f(8)),
                    seq: f(16),
                    stamp: SimTime::from_micros(f(24)),
                    live: rec[32] != 0,
                },
            ));
        }
        Some(Checkpoint {
            seq,
            stamp,
            horizon,
            blocks,
            records,
        })
    }
}

/// The horizon filter: per logical page, keeps every record stamped at or
/// after `horizon`, plus the freshest pre-horizon record by `(stamp, seq)`
/// and the freshest pre-horizon *live* record by `seq` (see the module
/// docs for why both are required). The output is flat, sorted by logical
/// page and by `(stamp, seq)` within each page's run — the mount's
/// canonical order, which is what lets the checkpoint+tail path merge
/// instead of re-sorting.
pub(crate) fn filter_chains(
    chains: &BTreeMap<Lba, Vec<ScanPage>>,
    horizon: SimTime,
) -> Vec<(Lba, ScanPage)> {
    let mut out = Vec::new();
    for (lba, chain) in chains {
        let mut keep: Vec<ScanPage> = chain
            .iter()
            .filter(|p| p.stamp >= horizon)
            .copied()
            .collect();
        let old = || chain.iter().filter(|p| p.stamp < horizon);
        let freshest = old().max_by_key(|p| (p.stamp, p.seq));
        let freshest_live = old().filter(|p| p.live).max_by_key(|p| p.seq);
        for extra in [freshest, freshest_live].into_iter().flatten() {
            // Sequence numbers are device-unique, so they dedupe exactly.
            if !keep.iter().any(|k| k.seq == extra.seq) {
                keep.push(*extra);
            }
        }
        keep.sort_unstable_by_key(|p| (p.stamp, p.seq));
        out.extend(keep.into_iter().map(|p| (*lba, p)));
    }
    out
}

/// Slicing-by-8 tables for CRC-32/IEEE (reflected polynomial), built at
/// compile time. `TABLES[0]` is the classic byte-at-a-time table;
/// `TABLES[k][n] = TABLES[0][TABLES[k-1][n] & 0xff] ^ (TABLES[k-1][n] >> 8)`
/// advances a byte `k` further positions. Checkpoints reach tens of
/// megabytes on a full drive, so the CRC pass is on the mount's critical
/// path: the bitwise loop cost ~100 ms per full-drive validation, the
/// single-table variant ~13 ms, slicing-by-8 a couple of milliseconds.
const CRC_TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut n = 0;
    while n < 256 {
        let mut c = n as u32;
        let mut k = 0;
        while k < 8 {
            let mask = (c & 1).wrapping_neg();
            c = (c >> 1) ^ (0xedb8_8320 & mask);
            k += 1;
        }
        tables[0][n] = c;
        n += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut n = 0;
        while n < 256 {
            let prev = tables[t - 1][n];
            tables[t][n] = tables[0][(prev & 0xff) as usize] ^ (prev >> 8);
            n += 1;
        }
        t += 1;
    }
    tables
};

/// CRC32 (IEEE 802.3, reflected), eight bytes per iteration.
pub(crate) fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        let lo = u32::from_le_bytes(c[0..4].try_into().unwrap()) ^ crc;
        let hi = u32::from_le_bytes(c[4..8].try_into().unwrap());
        crc = CRC_TABLES[7][(lo & 0xff) as usize]
            ^ CRC_TABLES[6][((lo >> 8) & 0xff) as usize]
            ^ CRC_TABLES[5][((lo >> 16) & 0xff) as usize]
            ^ CRC_TABLES[4][(lo >> 24) as usize]
            ^ CRC_TABLES[3][(hi & 0xff) as usize]
            ^ CRC_TABLES[2][((hi >> 8) & 0xff) as usize]
            ^ CRC_TABLES[1][((hi >> 16) & 0xff) as usize]
            ^ CRC_TABLES[0][(hi >> 24) as usize];
    }
    for &byte in chunks.remainder() {
        crc = CRC_TABLES[0][((crc ^ u32::from(byte)) & 0xff) as usize] ^ (crc >> 8);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(ppa: u64, seq: u64, stamp_us: u64, live: bool) -> ScanPage {
        ScanPage {
            ppa: Ppa::new(ppa),
            seq,
            stamp: SimTime::from_micros(stamp_us),
            live,
        }
    }

    /// Regroups a flat filter output for re-filtering (what the mount's
    /// chain-index rebuild does).
    fn regroup(flat: &[(Lba, ScanPage)]) -> BTreeMap<Lba, Vec<ScanPage>> {
        let mut out: BTreeMap<Lba, Vec<ScanPage>> = BTreeMap::new();
        for (lba, p) in flat {
            out.entry(*lba).or_default().push(*p);
        }
        out
    }

    fn sample() -> Checkpoint {
        let records = vec![
            (Lba::new(3), page(7, 2, 100, true)),
            (Lba::new(3), page(9, 5, 200, false)),
            (Lba::new(90), page(31, 9, 50, true)),
        ];
        Checkpoint {
            seq: 9,
            stamp: SimTime::from_micros(777),
            horizon: SimTime::from_micros(123),
            blocks: vec![
                BlockMeta {
                    erase_count: 0,
                    programmed: 3,
                    min_seq: Some(2),
                },
                BlockMeta {
                    erase_count: 4,
                    programmed: 0,
                    min_seq: None,
                },
            ],
            records,
        }
    }

    #[test]
    fn crc32_matches_reference_vector() {
        // The classic check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn encode_decode_round_trips() {
        let ckpt = sample();
        for page_size in [16usize, 64, 4096] {
            let pages = ckpt.encode(page_size);
            assert!(pages.iter().all(|p| p.len() <= page_size));
            let back = Checkpoint::decode(&pages).expect("valid checkpoint");
            assert_eq!(back, ckpt);
        }
    }

    #[test]
    fn torn_and_corrupt_checkpoints_are_rejected() {
        let ckpt = sample();
        let pages = ckpt.encode(16);
        assert!(pages.len() > 2, "sample must span several pages");
        // Empty slot.
        assert_eq!(Checkpoint::decode(&[]), None);
        // Torn write: any strict prefix of the pages fails.
        for cut in 0..pages.len() {
            assert_eq!(
                Checkpoint::decode(&pages[..cut]),
                None,
                "prefix of {cut} pages"
            );
        }
        // Bit flip in the body fails the CRC.
        let mut flipped: Vec<Bytes> = pages.clone();
        let last = flipped.last().unwrap().to_vec();
        let mut corrupt = last.clone();
        *corrupt.last_mut().unwrap() ^= 0x40;
        *flipped.last_mut().unwrap() = Bytes::from(corrupt);
        assert_eq!(Checkpoint::decode(&flipped), None);
        // Foreign magic fails fast.
        let mut foreign = pages[0].to_vec();
        foreign[0] ^= 0xff;
        let mut wrong = pages.clone();
        wrong[0] = Bytes::from(foreign);
        assert_eq!(Checkpoint::decode(&wrong), None);
    }

    #[test]
    fn filter_keeps_window_plus_predecessor_and_live_representative() {
        let mut chains = BTreeMap::new();
        // Old versions at 10/20/30 µs (30 relocated as a dead backup copy at
        // seq 9 — its freshest record is NOT live), fresh version at 500 µs.
        chains.insert(
            Lba::new(1),
            vec![
                page(0, 1, 10, true),
                page(1, 2, 20, true),
                page(2, 3, 30, true),
                page(8, 9, 30, false), // backup relocation of the v30 version
                page(3, 4, 500, true),
            ],
        );
        let out = filter_chains(&chains, SimTime::from_micros(100));
        let seqs: Vec<u64> = out
            .iter()
            .filter(|(l, _)| *l == Lba::new(1))
            .map(|(_, p)| p.seq)
            .collect();
        // stamp>=100 keeps seq 4; freshest pre-horizon by (stamp, seq) is
        // the backup copy (stamp 30, seq 9); freshest live pre-horizon by
        // seq is seq 3. All three survive, nothing else, in canonical
        // (stamp, seq) order.
        assert_eq!(seqs, vec![3, 9, 4]);
    }

    #[test]
    fn filter_is_idempotent_for_forward_horizons() {
        let mut chains = BTreeMap::new();
        chains.insert(
            Lba::new(1),
            vec![
                page(0, 1, 10, true),
                page(1, 2, 20, false),
                page(2, 3, 30, true),
                page(3, 4, 400, true),
                page(4, 5, 900, true),
            ],
        );
        chains.insert(Lba::new(2), vec![page(9, 6, 5, true)]);
        for h1 in [0u64, 15, 100, 450, 1000] {
            let once = filter_chains(&chains, SimTime::from_micros(h1));
            for h2 in [h1, h1 + 50, h1 + 1000] {
                let direct = filter_chains(&chains, SimTime::from_micros(h2));
                let twice = filter_chains(&regroup(&once), SimTime::from_micros(h2));
                assert_eq!(twice, direct, "h1={h1} h2={h2}");
            }
        }
    }

    #[test]
    fn filter_drops_empty_chains_and_handles_all_old_dead() {
        let mut chains = BTreeMap::new();
        chains.insert(Lba::new(0), vec![]);
        chains.insert(Lba::new(1), vec![page(0, 1, 10, false)]);
        let out = filter_chains(&chains, SimTime::from_micros(100));
        assert!(out.iter().all(|(l, _)| *l != Lba::new(0)));
        // A lone dead pre-horizon record is still the freshest pre-horizon
        // record — kept (it may be the backup a queue rebuild points at).
        assert_eq!(out.iter().filter(|(l, _)| *l == Lba::new(1)).count(), 1);
    }
}
