//! The SSD-Insider FTL: delayed deletion and instant rollback.

use crate::base::{FtlBase, ScanPage};
use crate::config::FtlConfig;
use crate::recovery_queue::RecoveryQueue;
use crate::traits::Ftl;
use crate::{FtlError, FtlStats, GcVictim, Result};
use bytes::Bytes;
use insider_nand::{Lba, NandStats, Ppa, SimTime};
use serde::{Deserialize, Serialize};

/// Outcome of a [`InsiderFtl::rollback`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RollbackReport {
    /// Backup entries applied (mapping-table updates performed).
    pub restored: u64,
    /// Entries older than the protection window, ignored per the paper's
    /// recovery process ("safe" data).
    pub ignored: u64,
    /// Distinct logical pages whose mapping changed.
    pub lbas_touched: u64,
    /// The instant whose state the drive was restored to (one window
    /// before the detection anchor).
    pub restored_to: SimTime,
}

/// The SSD-Insider FTL (paper §III-C).
///
/// The write path is identical to [`ConventionalFtl`](crate::ConventionalFtl)
/// except that superseding a mapping pushes a backup entry into the
/// [`RecoveryQueue`], which *protects* the old physical page: garbage
/// collection migrates protected pages instead of discarding them, and
/// [`rollback`](InsiderFtl::rollback) can restore the mapping table to its
/// state one protection window earlier by pointer updates alone.
///
/// Backup entries retire automatically once they age past the window
/// (10 s by default), bounding both the queue's DRAM footprint and the extra
/// GC cost — the paper measures ~0 % extra copies in the average case and
/// 22 % in the worst case (Fig. 9).
#[derive(Debug)]
pub struct InsiderFtl {
    base: FtlBase,
    queue: RecoveryQueue,
    read_only: bool,
    /// When set, retirement is paused and rollback anchors its window to
    /// this instant (the alarm time) rather than the call time.
    frozen_at: Option<SimTime>,
}

impl InsiderFtl {
    /// Creates an empty drive with the given configuration.
    pub fn new(config: FtlConfig) -> Self {
        let ppb = config.geometry().pages_per_block();
        InsiderFtl {
            base: FtlBase::new(config),
            queue: RecoveryQueue::with_block_size(ppb),
            read_only: false,
            frozen_at: None,
        }
    }

    /// The configuration this drive was built with.
    pub fn config(&self) -> &FtlConfig {
        self.base.config()
    }

    /// The recovery queue (inspection only).
    pub fn recovery_queue(&self) -> &RecoveryQueue {
        &self.queue
    }

    /// Number of blocks currently in the free pool.
    pub fn free_blocks(&self) -> usize {
        self.base.free_blocks()
    }

    /// Installs a deterministic NAND fault plan; scheduled operations fail
    /// with [`NandError::InjectedFault`](insider_nand::NandError::InjectedFault).
    pub fn set_fault_plan(&mut self, plan: insider_nand::FaultPlan) {
        self.base.set_fault_plan(plan);
    }

    /// NAND busy time as `(serial sum, per-channel-parallel makespan)` —
    /// the parallel figure is the device-level time a multi-channel
    /// controller would take.
    pub fn nand_busy_ns(&self) -> (u64, u64) {
        self.base.nand_busy_ns()
    }

    /// Per-chip and per-channel-bus busy vectors, for phase-delta analyses.
    pub fn nand_busy_detail(&self) -> (Vec<u64>, Vec<u64>) {
        self.base.nand_busy_detail()
    }

    /// Reads promoted past queued mutations by the out-of-order scheduler.
    pub fn reads_promoted(&self) -> u64 {
        self.base.device.reads_promoted()
    }

    /// Drains and returns the captured command log (empty unless configured
    /// with `FtlConfig::capture_commands(true)`).
    pub fn take_captured_commands(&mut self) -> Vec<insider_nand::CmdRecord> {
        self.base.device.take_captured_commands()
    }

    /// Read-only view of the raw NAND device, for physical-state oracles
    /// (page states, OOB records, scheduler makespans).
    pub fn device(&self) -> &insider_nand::NandDevice {
        &self.base.device
    }

    /// Per-GC-entry foreground pause percentiles (device makespan growth
    /// per GC entry, blocking or incremental).
    pub fn gc_pause_latency(&self) -> insider_nand::KindLatency {
        self.base.gc_pause_latency()
    }

    /// Whether an incremental GC job is paused mid-block.
    pub fn gc_job_pending(&self) -> bool {
        self.base.gc_job_pending()
    }

    /// Runs any paused incremental GC job to completion (quiescence helper
    /// for differential oracles and benchmarks).
    ///
    /// # Errors
    ///
    /// Propagates NAND failures from the drained migrations.
    pub fn gc_quiesce(&mut self) -> Result<()> {
        self.base.gc_drain_job(Some(&mut self.queue))
    }

    /// Whether the drive is refusing writes pending recovery.
    pub fn is_read_only(&self) -> bool {
        self.read_only
    }

    /// Switches write protection on or off. The detection layer sets this
    /// before recovery and clears it after the host reboots.
    pub fn set_read_only(&mut self, read_only: bool) {
        self.read_only = read_only;
    }

    /// Retires backup entries older than the protection window as of `now`.
    /// Called implicitly by every write; exposed so idle periods can also
    /// release protected space. A no-op while retirement is frozen.
    pub fn tick(&mut self, now: SimTime) {
        if self.frozen_at.is_some() {
            return;
        }
        let cutoff = now.saturating_sub(self.base.config().window());
        let retired = self.queue.retire_before(cutoff);
        self.base.note_retired(&retired);
        debug_assert_eq!(
            self.base.protected_pages(),
            self.queue.protected_count() as u64,
            "victim-index protected count diverged from the recovery queue"
        );
    }

    /// Freezes backup-entry retirement as of `at` (the alarm time). The
    /// detection layer freezes the queue the moment an alarm is raised: the
    /// paper's guarantee is that old versions are "never removed until the
    /// detection algorithm confirms the new versions are safe" — if the
    /// user takes minutes to answer the alarm dialog, the pre-attack
    /// versions must not age out, and a later [`rollback`](Self::rollback)
    /// still rewinds relative to the alarm, not the confirmation.
    pub fn freeze_retirement(&mut self, at: SimTime) {
        self.frozen_at = Some(at);
    }

    /// Thaws retirement (the alarm was dismissed).
    pub fn thaw_retirement(&mut self) {
        self.frozen_at = None;
    }

    /// Whether retirement is currently frozen, and since when.
    pub fn retirement_frozen_at(&self) -> Option<SimTime> {
        self.frozen_at
    }

    /// Rolls the mapping table back to its state one protection window before
    /// `now` (paper Fig. 5).
    ///
    /// Backup entries are scanned newest-to-oldest; entries younger than the
    /// window are applied (current version invalidated, old version revived),
    /// older entries are ignored as already safe. The queue is emptied
    /// afterwards. No page data is copied — recovery cost is proportional to
    /// the number of mapping updates, which is why the paper reports < 1 s.
    ///
    /// The caller usually brackets this with
    /// [`set_read_only`](InsiderFtl::set_read_only).
    ///
    /// # Errors
    ///
    /// Propagates NAND bookkeeping failures (out-of-range addresses), which
    /// indicate an internal inconsistency rather than a user error.
    pub fn rollback(&mut self, now: SimTime) -> Result<RollbackReport> {
        // Anchor the window to the freeze (alarm) time when one is set — a
        // user who takes minutes to confirm still gets the 10 s before the
        // alarm undone, which is exactly what the freeze preserved.
        let anchor = self.frozen_at.map_or(now, |f| f.min(now));
        let cutoff = anchor.saturating_sub(self.base.config().window());
        let mut report = RollbackReport {
            restored_to: cutoff,
            ..RollbackReport::default()
        };
        let mut touched = std::collections::HashSet::new();

        // Drain the queue and release every protection *before* rewinding:
        // restore_mapping revalidates old pages (decrementing per-block
        // invalid counts), and the victim index insists protected ≤ invalid
        // at every step.
        let entries = self.queue.take_all();
        self.base.clear_protected();
        for entry in entries.iter().rev() {
            if entry.stamp < cutoff {
                report.ignored += 1;
                continue;
            }
            self.base.restore_mapping(entry.lba, entry.old)?;
            touched.insert(entry.lba);
            report.restored += 1;
        }
        report.lbas_touched = touched.len() as u64;
        // The incident is over: resume normal retirement for new entries.
        self.frozen_at = None;
        Ok(report)
    }

    /// OOB records decoded by the most recent mount scan (zero before any
    /// power cycle).
    pub fn mount_scan_entries(&self) -> u64 {
        self.base.mount_scan_entries()
    }

    /// Records held by the checkpoint chain index (zero unless periodic
    /// checkpointing is enabled) — the DRAM cost of fast remounts.
    pub fn chain_index_entries(&self) -> u64 {
        self.base.chain_index_entries()
    }

    /// Simulates a power loss followed by a power-on mount (paper §III-E:
    /// the fsck analogy). All DRAM state is rebuilt from the OOB scan —
    /// including the **recovery queue**, so rollback keeps working across a
    /// crash:
    ///
    /// Each logical page's scan chain, sorted oldest first by
    /// `(stamp, seq)`, is collapsed to one surviving copy per written
    /// version (a GC source and its relocated copy share a stamp; the
    /// fresher copy represents the version). Version `i` then corresponds
    /// to the host write that created it, and the queue entry for that
    /// write is `(lba, predecessor of version i, stamp of version i)` —
    /// `None` when version `i` is the page's first write. Entries older
    /// than the protection window (anchored at the preserved freeze time,
    /// or `now`) were already retired before the cut and are not rebuilt;
    /// for every rebuilt entry the protected predecessor is guaranteed to
    /// still be on flash, because the pre-crash queue protected it from GC.
    ///
    /// Two approximations are inherent to OOB-only reconstruction and are
    /// part of the crash-consistency contract: same-stamp overwrites of one
    /// page collapse to the newest version, and trims (which leave no flash
    /// record) are volatile — a trimmed page whose last content is still on
    /// flash comes back mapped.
    ///
    /// The read-only latch and the retirement freeze are preserved (modeled
    /// as NVRAM-backed flags, like the alarm state), so a crash between an
    /// alarm and the user's confirmation still rolls back from the alarm
    /// anchor.
    ///
    /// # Errors
    ///
    /// Fails only on internal inconsistencies surfaced by the OOB scan.
    pub fn power_cut(&mut self, now: SimTime) -> Result<()> {
        self.base.set_clock(now);
        let chains = self.base.remount()?;
        self.queue.clear();
        let anchor = self.frozen_at.map_or(now, |f| f.min(now));
        let cutoff = anchor.saturating_sub(self.base.config().window());
        let mut rebuilt: Vec<(SimTime, u64, Lba, Option<Ppa>)> = Vec::new();
        // The scan is flat and sorted by logical page, oldest version
        // first — walk each page's adjacent run in place.
        let mut at = 0;
        while at < chains.len() {
            let lba = chains[at].0;
            let mut end = at + 1;
            while end < chains.len() && chains[end].0 == lba {
                end += 1;
            }
            let run = &chains[at..end];
            at = end;
            if lba.index() >= self.base.logical_pages() {
                continue;
            }
            // One representative (the freshest copy) per written version.
            let mut versions: Vec<ScanPage> = Vec::new();
            for &(_, page) in run {
                match versions.last_mut() {
                    Some(last) if last.stamp == page.stamp => *last = page,
                    _ => versions.push(page),
                }
            }
            for (i, v) in versions.iter().enumerate() {
                if v.stamp >= cutoff {
                    let old = (i > 0).then(|| versions[i - 1].ppa);
                    rebuilt.push((v.stamp, v.seq, lba, old));
                }
            }
        }
        // Retirement pops the queue front in stamp order, so the rebuilt
        // entries must be pushed globally time-sorted; the device sequence
        // number breaks stamp ties deterministically.
        rebuilt.sort_unstable();
        for (stamp, _seq, lba, old) in rebuilt {
            self.queue.push(lba, old, stamp);
            if let Some(old) = old {
                self.base.note_mount_protected(old, lba);
            }
        }
        debug_assert_eq!(
            self.base.protected_pages(),
            self.queue.protected_count() as u64,
            "rebuilt protected mirror diverged from the rebuilt queue"
        );
        Ok(())
    }
}

impl Ftl for InsiderFtl {
    fn write(&mut self, lba: Lba, data: Bytes, now: SimTime) -> Result<()> {
        if self.read_only {
            return Err(FtlError::ReadOnly);
        }
        self.base.set_clock(now);
        self.base.check_lba(lba)?;
        self.tick(now);
        self.base.gc_before_write(0, Some(&mut self.queue))?;
        let old = self.base.program_mapped(lba, data, now)?;
        if let Some(old) = old {
            self.base.invalidate(old)?;
        }
        // Record the pre-image (or its absence) so rollback can undo this
        // write even when it created the logical page.
        self.queue.push(lba, old, now);
        if let Some(old) = old {
            self.base.note_protected(old);
        }
        self.base.stats.host_writes += 1;
        // Checkpoints anchor their horizon at the same frozen-aware time
        // the rollback path uses, so a checkpointed mount never forgets a
        // version rollback could still need.
        self.base
            .maybe_checkpoint(self.frozen_at.map_or(now, |f| f.min(now)))?;
        Ok(())
    }

    fn read(&mut self, lba: Lba, now: SimTime) -> Result<Option<Bytes>> {
        self.base.set_clock(now);
        self.base.check_lba(lba)?;
        let data = self.base.read_mapped(lba)?;
        self.base.stats.host_reads += 1;
        Ok(data)
    }

    fn trim(&mut self, lba: Lba, now: SimTime) -> Result<()> {
        if self.read_only {
            return Err(FtlError::ReadOnly);
        }
        self.base.set_clock(now);
        self.base.check_lba(lba)?;
        self.tick(now);
        if let Some(old) = self.base.mapping.set(lba, None) {
            self.base.invalidate(old)?;
            self.queue.push(lba, Some(old), now);
            self.base.note_protected(old);
        }
        self.base.stats.host_trims += 1;
        Ok(())
    }

    fn read_extent(&mut self, lba: Lba, len: u32, now: SimTime) -> Result<Vec<Option<Bytes>>> {
        self.base.set_clock(now);
        self.base.check_extent(lba, len)?;
        let out = self.base.read_extent_mapped(lba, len)?;
        self.base.stats.host_reads += len as u64;
        Ok(out)
    }

    fn write_extent(&mut self, lba: Lba, data: &[Bytes], now: SimTime) -> Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        if self.read_only {
            return Err(FtlError::ReadOnly);
        }
        self.base.set_clock(now);
        self.base.check_extent(lba, data.len() as u32)?;
        self.tick(now);
        self.base
            .gc_before_write(data.len() as u64, Some(&mut self.queue))?;
        // The base layer finalizes mapping, invalidation and the vectorized
        // queue append page by page, so a mid-batch NAND failure leaves the
        // programmed prefix fully recoverable.
        self.base
            .program_extent_mapped(lba, data, now, Some(&mut self.queue))?;
        self.base
            .maybe_checkpoint(self.frozen_at.map_or(now, |f| f.min(now)))
    }

    fn power_cut(&mut self, now: SimTime) -> Result<()> {
        InsiderFtl::power_cut(self, now)
    }

    fn trim_extent(&mut self, lba: Lba, len: u32, now: SimTime) -> Result<()> {
        if len == 0 {
            return Ok(());
        }
        if self.read_only {
            return Err(FtlError::ReadOnly);
        }
        self.base.set_clock(now);
        self.base.check_extent(lba, len)?;
        self.tick(now);
        let olds = self.base.unmap_extent(lba, len)?;
        // Like scalar trim, only pages that were actually mapped leave a
        // backup entry — trimming a hole is not an undoable event.
        for (i, old) in olds.into_iter().enumerate() {
            if let Some(old) = old {
                self.queue.push(lba.offset(i as u64), Some(old), now);
                self.base.note_protected(old);
            }
        }
        Ok(())
    }

    fn sync(&mut self) {
        self.base.sync_device();
    }

    fn latency_snapshot(&self) -> Option<insider_nand::LatencySnapshot> {
        self.base.latency_snapshot()
    }

    fn host_latency_snapshot(&self) -> Option<insider_nand::LatencySnapshot> {
        self.base.host_latency_snapshot()
    }

    fn gc_debt(&self) -> f64 {
        self.base.gc_debt()
    }

    fn stats(&self) -> &FtlStats {
        &self.base.stats
    }

    fn nand_stats(&self) -> &NandStats {
        self.base.device.stats()
    }

    fn logical_pages(&self) -> u64 {
        self.base.logical_pages()
    }

    fn utilization(&self) -> f64 {
        self.base.mapping.utilization()
    }

    fn wear_summary(&self) -> (u32, u32, f64) {
        self.base.device.wear_summary()
    }

    fn gc_victims(&self) -> &[GcVictim] {
        self.base.gc_victims()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insider_nand::Geometry;

    fn ftl() -> InsiderFtl {
        InsiderFtl::new(FtlConfig::new(Geometry::tiny()))
    }

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn overwrite_pushes_backup_entry() {
        let mut f = ftl();
        f.write(Lba::new(0), Bytes::from_static(b"v1"), secs(0))
            .unwrap();
        f.write(Lba::new(0), Bytes::from_static(b"v2"), secs(1))
            .unwrap();
        assert_eq!(f.recovery_queue().len(), 2); // first write + overwrite
        assert_eq!(f.recovery_queue().protected_count(), 1);
    }

    #[test]
    fn rollback_restores_overwritten_data() {
        let mut f = ftl();
        // The file exists before the window; the attack happens inside it.
        f.write(Lba::new(0), Bytes::from_static(b"plain"), secs(0))
            .unwrap();
        f.write(Lba::new(0), Bytes::from_static(b"cipher"), secs(15))
            .unwrap();
        let report = f.rollback(secs(16)).unwrap();
        assert_eq!(report.restored, 1);
        // The creation entry was already retired by the write at t=15.
        assert_eq!(report.ignored, 0);
        assert_eq!(
            f.read(Lba::new(0), secs(16)).unwrap().unwrap().as_ref(),
            b"plain"
        );
    }

    #[test]
    fn rollback_restores_oldest_version_within_window() {
        let mut f = ftl();
        f.write(Lba::new(0), Bytes::from_static(b"v0"), secs(0))
            .unwrap();
        f.write(Lba::new(0), Bytes::from_static(b"v1"), secs(12))
            .unwrap();
        f.write(Lba::new(0), Bytes::from_static(b"v2"), secs(14))
            .unwrap();
        f.write(Lba::new(0), Bytes::from_static(b"v3"), secs(15))
            .unwrap();
        // Window is 10 s; detection at t=16 → roll back to state at t=6: "v0".
        f.rollback(secs(16)).unwrap();
        assert_eq!(
            f.read(Lba::new(0), secs(16)).unwrap().unwrap().as_ref(),
            b"v0"
        );
    }

    #[test]
    fn rollback_unmaps_pages_created_within_window() {
        let mut f = ftl();
        f.write(Lba::new(7), Bytes::from_static(b"dropped"), secs(5))
            .unwrap();
        f.rollback(secs(6)).unwrap();
        assert_eq!(f.read(Lba::new(7), secs(6)).unwrap(), None);
    }

    #[test]
    fn rollback_ignores_entries_older_than_window() {
        let mut f = ftl();
        f.write(Lba::new(0), Bytes::from_static(b"old"), secs(0))
            .unwrap();
        f.write(Lba::new(0), Bytes::from_static(b"newer"), secs(1))
            .unwrap();
        // Detection at t=20: both entries are older than t-10 and stay.
        let report = f.rollback(secs(20)).unwrap();
        assert_eq!(report.restored, 0);
        assert_eq!(report.ignored, 2);
        assert_eq!(
            f.read(Lba::new(0), secs(20)).unwrap().unwrap().as_ref(),
            b"newer"
        );
    }

    #[test]
    fn rollback_restores_trimmed_pages() {
        let mut f = ftl();
        f.write(Lba::new(3), Bytes::from_static(b"doc"), secs(0))
            .unwrap();
        f.tick(secs(20)); // retire the creation entry
        f.trim(Lba::new(3), secs(21)).unwrap();
        assert_eq!(f.read(Lba::new(3), secs(21)).unwrap(), None);
        f.rollback(secs(22)).unwrap();
        assert_eq!(
            f.read(Lba::new(3), secs(22)).unwrap().unwrap().as_ref(),
            b"doc"
        );
    }

    #[test]
    fn read_only_blocks_writes_and_trims() {
        let mut f = ftl();
        f.write(Lba::new(0), Bytes::from_static(b"x"), secs(0))
            .unwrap();
        f.set_read_only(true);
        assert_eq!(
            f.write(Lba::new(0), Bytes::from_static(b"y"), secs(1)),
            Err(FtlError::ReadOnly)
        );
        assert_eq!(f.trim(Lba::new(0), secs(1)), Err(FtlError::ReadOnly));
        // Reads still work.
        assert!(f.read(Lba::new(0), secs(1)).unwrap().is_some());
        f.set_read_only(false);
        f.write(Lba::new(0), Bytes::from_static(b"y"), secs(2))
            .unwrap();
    }

    #[test]
    fn tick_retires_expired_entries() {
        let mut f = ftl();
        f.write(Lba::new(0), Bytes::from_static(b"a"), secs(0))
            .unwrap();
        f.write(Lba::new(0), Bytes::from_static(b"b"), secs(1))
            .unwrap();
        assert_eq!(f.recovery_queue().len(), 2);
        f.tick(secs(30));
        assert_eq!(f.recovery_queue().len(), 0);
        assert_eq!(f.recovery_queue().protected_count(), 0);
    }

    #[test]
    fn gc_preserves_protected_old_versions() {
        let mut f = ftl();
        // Block 0 (16 pages) ends up as a deliberate mix:
        //   page 0        valid      "precious" (lba 0, written before window)
        //   pages 1..=6   invalid    pre-images from t=0, retired by t=50
        //   pages 7..=14  invalid    pre-images from t=50, still protected
        //   page 15       valid      current version of lba 1
        f.write(Lba::new(0), Bytes::from_static(b"precious"), secs(0))
            .unwrap();
        for i in 0..7 {
            let data = Bytes::copy_from_slice(format!("early{i}").as_bytes());
            f.write(Lba::new(1), data, secs(0)).unwrap();
        }
        for i in 0..8 {
            let data = Bytes::copy_from_slice(format!("late{i}").as_bytes());
            f.write(Lba::new(1), data, secs(50)).unwrap();
        }
        // Churn a third page at t=50 until GC fires. Churn pre-images are
        // all protected, so the only viable victim is block 0.
        let mut churn = 0;
        while f.stats().gc_invocations == 0 {
            let data = Bytes::copy_from_slice(format!("churn{churn}").as_bytes());
            f.write(Lba::new(2), data, secs(50)).unwrap();
            churn += 1;
            assert!(churn < 400, "gc never triggered");
        }
        assert!(
            f.stats().gc_protected_copies > 0,
            "protected pre-images must have been migrated, stats: {}",
            f.stats()
        );
        // The protected old versions survive GC: rollback still works.
        f.rollback(secs(51)).unwrap();
        assert_eq!(
            f.read(Lba::new(0), secs(51)).unwrap().unwrap().as_ref(),
            b"precious"
        );
        // lba 1 reverts to its newest pre-window version ("early6").
        assert_eq!(
            f.read(Lba::new(1), secs(51)).unwrap().unwrap().as_ref(),
            b"early6"
        );
    }

    #[test]
    fn insider_gc_copies_at_least_as_many_pages_as_baseline() {
        use crate::ConventionalFtl;
        let run = |insider: bool| -> u64 {
            let cfg = FtlConfig::new(Geometry::tiny());
            let mut conv;
            let mut ins;
            let f: &mut dyn Ftl = if insider {
                ins = InsiderFtl::new(cfg);
                &mut ins
            } else {
                conv = ConventionalFtl::new(cfg);
                &mut conv
            };
            // Mixed-age overwrite stream: 60 ms per write over 4 hot pages
            // plus 12 cold pages, so victims carry a mix of live, retired
            // and protected pages.
            for i in 0..12u64 {
                f.write(
                    Lba::new(100 + i),
                    Bytes::from_static(b"cold"),
                    SimTime::ZERO,
                )
                .unwrap();
            }
            for i in 0..600u64 {
                let data = Bytes::copy_from_slice(format!("{i}").as_bytes());
                f.write(Lba::new(i % 4), data, SimTime::from_millis(i * 60))
                    .unwrap();
            }
            f.stats().gc_page_copies
        };
        let conventional = run(false);
        let insider = run(true);
        assert!(
            insider >= conventional,
            "insider ({insider}) must not copy fewer pages than conventional ({conventional})"
        );
    }

    #[test]
    fn rollback_report_counts_touched_lbas() {
        let mut f = ftl();
        f.write(Lba::new(0), Bytes::from_static(b"a"), secs(0))
            .unwrap();
        f.write(Lba::new(0), Bytes::from_static(b"b"), secs(1))
            .unwrap();
        f.write(Lba::new(1), Bytes::from_static(b"c"), secs(2))
            .unwrap();
        let report = f.rollback(secs(3)).unwrap();
        assert_eq!(report.restored, 3);
        assert_eq!(report.lbas_touched, 2);
    }

    #[test]
    fn frozen_retirement_preserves_rollback_window() {
        let mut f = ftl();
        f.write(Lba::new(0), Bytes::from_static(b"plain"), secs(0))
            .unwrap();
        // Attack at t=20; alarm freezes the queue at t=21.
        f.write(Lba::new(0), Bytes::from_static(b"cipher"), secs(20))
            .unwrap();
        f.freeze_retirement(secs(21));
        // The user dithers: ticks and reads at t=300 must not retire the
        // pre-image, and rollback at t=300 anchors to the alarm.
        f.tick(secs(300));
        assert_eq!(f.recovery_queue().protected_count(), 1);
        let report = f.rollback(secs(300)).unwrap();
        assert_eq!(report.restored_to, secs(11));
        assert_eq!(
            f.read(Lba::new(0), secs(300)).unwrap().unwrap().as_ref(),
            b"plain"
        );
        // Rollback thaws: new entries retire normally again.
        assert_eq!(f.retirement_frozen_at(), None);
        f.write(Lba::new(1), Bytes::from_static(b"x"), secs(301))
            .unwrap();
        f.tick(secs(400));
        assert!(f.recovery_queue().is_empty());
    }

    #[test]
    fn thaw_resumes_retirement() {
        let mut f = ftl();
        f.write(Lba::new(0), Bytes::from_static(b"a"), secs(0))
            .unwrap();
        f.freeze_retirement(secs(1));
        f.tick(secs(100));
        assert_eq!(f.recovery_queue().len(), 1, "frozen queue must not drain");
        f.thaw_retirement();
        f.tick(secs(100));
        assert!(f.recovery_queue().is_empty());
    }

    #[test]
    fn extent_write_matches_scalar_queue_and_contents() {
        let mut scalar = ftl();
        let mut extent = ftl();
        let v1: Vec<Bytes> = (0..5)
            .map(|i| Bytes::copy_from_slice(format!("a{i}").as_bytes()))
            .collect();
        let v2: Vec<Bytes> = (0..5)
            .map(|i| Bytes::copy_from_slice(format!("b{i}").as_bytes()))
            .collect();
        for round in [&v1, &v2] {
            for (i, p) in round.iter().enumerate() {
                scalar
                    .write(Lba::new(i as u64), p.clone(), secs(1))
                    .unwrap();
            }
            extent.write_extent(Lba::new(0), round, secs(1)).unwrap();
        }
        assert_eq!(scalar.recovery_queue().len(), extent.recovery_queue().len());
        assert_eq!(
            scalar.recovery_queue().protected_count(),
            extent.recovery_queue().protected_count()
        );
        assert_eq!(scalar.stats(), extent.stats());
        assert_eq!(
            scalar.read_extent(Lba::new(0), 5, secs(1)).unwrap(),
            extent.read_extent(Lba::new(0), 5, secs(1)).unwrap()
        );
    }

    #[test]
    fn extent_write_rolls_back_like_scalar_writes() {
        let mut f = ftl();
        let plain: Vec<Bytes> = (0..4)
            .map(|i| Bytes::copy_from_slice(format!("plain{i}").as_bytes()))
            .collect();
        let cipher: Vec<Bytes> = (0..4)
            .map(|i| Bytes::copy_from_slice(format!("cipher{i}").as_bytes()))
            .collect();
        f.write_extent(Lba::new(0), &plain, secs(0)).unwrap();
        f.write_extent(Lba::new(0), &cipher, secs(15)).unwrap();
        let report = f.rollback(secs(16)).unwrap();
        assert_eq!(report.restored, 4);
        assert_eq!(report.lbas_touched, 4);
        let back = f.read_extent(Lba::new(0), 4, secs(16)).unwrap();
        for (i, page) in back.into_iter().enumerate() {
            assert_eq!(page.unwrap().as_ref(), format!("plain{i}").as_bytes());
        }
    }

    #[test]
    fn extent_trim_records_only_mapped_pages() {
        let mut f = ftl();
        f.write(Lba::new(1), Bytes::from_static(b"doc"), secs(0))
            .unwrap();
        f.tick(secs(20)); // retire the creation entry
                          // Trim lbas 0..4; only lba 1 was mapped.
        f.trim_extent(Lba::new(0), 4, secs(21)).unwrap();
        assert_eq!(f.recovery_queue().len(), 1);
        assert_eq!(f.stats().host_trims, 4);
        f.rollback(secs(22)).unwrap();
        assert_eq!(
            f.read(Lba::new(1), secs(22)).unwrap().unwrap().as_ref(),
            b"doc"
        );
        assert_eq!(f.read(Lba::new(0), secs(22)).unwrap(), None);
    }

    #[test]
    fn read_only_blocks_extent_ops() {
        let mut f = ftl();
        f.write(Lba::new(0), Bytes::from_static(b"x"), secs(0))
            .unwrap();
        f.set_read_only(true);
        assert_eq!(
            f.write_extent(Lba::new(0), &[Bytes::from_static(b"y")], secs(1)),
            Err(FtlError::ReadOnly)
        );
        assert_eq!(
            f.trim_extent(Lba::new(0), 1, secs(1)),
            Err(FtlError::ReadOnly)
        );
        // Empty extents stay no-ops even when read-only.
        assert_eq!(f.write_extent(Lba::new(0), &[], secs(1)), Ok(()));
        assert!(f.read_extent(Lba::new(0), 1, secs(1)).unwrap()[0].is_some());
    }

    #[test]
    fn write_after_rollback_starts_fresh_history() {
        let mut f = ftl();
        f.write(Lba::new(0), Bytes::from_static(b"v1"), secs(0))
            .unwrap();
        f.rollback(secs(1)).unwrap();
        assert!(f.recovery_queue().is_empty());
        f.write(Lba::new(0), Bytes::from_static(b"v2"), secs(2))
            .unwrap();
        assert_eq!(
            f.read(Lba::new(0), secs(2)).unwrap().unwrap().as_ref(),
            b"v2"
        );
    }
}
