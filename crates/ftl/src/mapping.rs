//! The logical-to-physical page mapping table.

use insider_nand::{Lba, Ppa};

/// Page-level logical-to-physical mapping table.
///
/// A dense array indexed by LBA; `None` means the logical page is unmapped
/// (never written, trimmed, or unmapped by rollback).
///
/// # Example
///
/// ```rust
/// use insider_ftl::MappingTable;
/// use insider_nand::{Lba, Ppa};
///
/// let mut map = MappingTable::new(8);
/// assert_eq!(map.set(Lba::new(3), Some(Ppa::new(40))), None);
/// assert_eq!(map.get(Lba::new(3)), Some(Ppa::new(40)));
/// assert_eq!(map.set(Lba::new(3), None), Some(Ppa::new(40)));
/// ```
#[derive(Debug, Clone)]
pub struct MappingTable {
    entries: Vec<Option<Ppa>>,
    mapped: u64,
}

impl MappingTable {
    /// An empty table covering `logical_pages` logical pages.
    pub fn new(logical_pages: u64) -> Self {
        MappingTable {
            entries: vec![None; logical_pages as usize],
            mapped: 0,
        }
    }

    /// Number of logical pages the table covers.
    pub fn len(&self) -> u64 {
        self.entries.len() as u64
    }

    /// Whether the table covers zero pages.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `lba` falls within the table.
    pub fn contains(&self, lba: Lba) -> bool {
        (lba.index() as usize) < self.entries.len()
    }

    /// Current physical location of `lba`, if mapped.
    ///
    /// # Panics
    ///
    /// Panics if `lba` is out of range; callers validate against
    /// [`MappingTable::contains`] (the FTL front-ends do).
    pub fn get(&self, lba: Lba) -> Option<Ppa> {
        self.entries[lba.index() as usize]
    }

    /// Points `lba` at `ppa` (or unmaps it with `None`), returning the
    /// previous mapping.
    ///
    /// # Panics
    ///
    /// Panics if `lba` is out of range.
    pub fn set(&mut self, lba: Lba, ppa: Option<Ppa>) -> Option<Ppa> {
        let slot = &mut self.entries[lba.index() as usize];
        let old = std::mem::replace(slot, ppa);
        match (old.is_some(), ppa.is_some()) {
            (false, true) => self.mapped += 1,
            (true, false) => self.mapped -= 1,
            _ => {}
        }
        old
    }

    /// Number of currently mapped logical pages.
    pub fn mapped_count(&self) -> u64 {
        self.mapped
    }

    /// Fraction of logical pages currently mapped.
    pub fn utilization(&self) -> f64 {
        if self.entries.is_empty() {
            0.0
        } else {
            self.mapped as f64 / self.entries.len() as f64
        }
    }

    /// Iterates over `(lba, ppa)` pairs for all mapped pages.
    pub fn iter(&self) -> impl Iterator<Item = (Lba, Ppa)> + '_ {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.map(|ppa| (Lba::new(i as u64), ppa)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_round_trip() {
        let mut m = MappingTable::new(4);
        assert_eq!(m.get(Lba::new(0)), None);
        assert_eq!(m.set(Lba::new(0), Some(Ppa::new(9))), None);
        assert_eq!(m.get(Lba::new(0)), Some(Ppa::new(9)));
        assert_eq!(m.set(Lba::new(0), Some(Ppa::new(11))), Some(Ppa::new(9)));
    }

    #[test]
    fn mapped_count_tracks_transitions() {
        let mut m = MappingTable::new(4);
        m.set(Lba::new(0), Some(Ppa::new(1)));
        m.set(Lba::new(1), Some(Ppa::new(2)));
        assert_eq!(m.mapped_count(), 2);
        m.set(Lba::new(0), Some(Ppa::new(3))); // remap, no change
        assert_eq!(m.mapped_count(), 2);
        m.set(Lba::new(0), None);
        assert_eq!(m.mapped_count(), 1);
        m.set(Lba::new(0), None); // unmapping twice is a no-op
        assert_eq!(m.mapped_count(), 1);
        assert!((m.utilization() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn iter_yields_only_mapped() {
        let mut m = MappingTable::new(4);
        m.set(Lba::new(1), Some(Ppa::new(5)));
        m.set(Lba::new(3), Some(Ppa::new(7)));
        let pairs: Vec<_> = m.iter().collect();
        assert_eq!(
            pairs,
            vec![(Lba::new(1), Ppa::new(5)), (Lba::new(3), Ppa::new(7))]
        );
    }

    #[test]
    fn contains_checks_bounds() {
        let m = MappingTable::new(4);
        assert!(m.contains(Lba::new(3)));
        assert!(!m.contains(Lba::new(4)));
    }

    #[test]
    #[should_panic]
    fn out_of_range_get_panics() {
        MappingTable::new(2).get(Lba::new(2));
    }
}
