//! # insider-ftl
//!
//! Flash Translation Layers for the SSD-Insider reproduction (Baek et al.,
//! ICDCS 2018): a conventional page-mapping FTL baseline and the SSD-Insider
//! FTL with *delayed deletion* and instant rollback.
//!
//! ## The two FTLs
//!
//! * [`ConventionalFtl`] — page-level mapping with greedy garbage collection.
//!   When a logical page is overwritten, the old physical page becomes
//!   reclaimable immediately.
//! * [`InsiderFtl`] — identical write path, but every overwrite pushes a
//!   backup entry `(lba, old ppa, timestamp)` into a [`RecoveryQueue`].
//!   Old pages stay *protected* from reclamation until their entry ages past
//!   the protection window (10 s in the paper). If ransomware is detected,
//!   [`InsiderFtl::rollback`] rewinds the mapping table to its state one
//!   window ago — by pointer updates only, with no data copying, which is why
//!   recovery completes in well under a second.
//!
//! ## Example
//!
//! ```rust
//! use insider_ftl::{FtlConfig, InsiderFtl, Ftl};
//! use insider_nand::{Geometry, Lba, SimTime};
//! use bytes::Bytes;
//!
//! # fn main() -> Result<(), insider_ftl::FtlError> {
//! let mut ftl = InsiderFtl::new(FtlConfig::new(Geometry::tiny()));
//! let lba = Lba::new(3);
//!
//! ftl.write(lba, Bytes::from_static(b"precious document"), SimTime::from_secs(1))?;
//! // Ransomware overwrites the block with ciphertext:
//! ftl.write(lba, Bytes::from_static(b"ciphertext"), SimTime::from_secs(15))?;
//!
//! // Detection fires; roll the drive back one window:
//! ftl.set_read_only(true);
//! ftl.rollback(SimTime::from_secs(16))?;
//! ftl.set_read_only(false);
//!
//! let restored = ftl.read(lba, SimTime::from_secs(16))?.unwrap();
//! assert_eq!(restored.as_ref(), b"precious document");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod base;
mod checkpoint;
mod config;
mod conventional;
mod error;
mod insider;
mod mapping;
mod recovery_queue;
mod stats;
mod traits;

pub use config::{FtlConfig, GcPolicy};
pub use conventional::ConventionalFtl;
pub use error::FtlError;
pub use insider::{InsiderFtl, RollbackReport};
pub use mapping::MappingTable;
pub use recovery_queue::{BackupEntry, RecoveryQueue};
pub use stats::{FtlStats, GcVictim, GcVictimKind, TaggedFtlStats};
pub use traits::Ftl;

/// Convenience result alias for FTL operations.
pub type Result<T> = std::result::Result<T, FtlError>;
