//! FTL-level statistics, including the GC page-copy counts of Fig. 9.

use serde::{Deserialize, Serialize};

/// Cumulative FTL statistics.
///
/// `gc_page_copies` is the headline metric of the paper's Fig. 9: the number
/// of pages garbage collection had to migrate. The SSD-Insider FTL reports
/// `gc_protected_copies` as the subset forced by delayed deletion (copies of
/// *invalid* pages that are still within the protection window).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FtlStats {
    /// Host-issued page reads served.
    pub host_reads: u64,
    /// Host-issued page writes served.
    pub host_writes: u64,
    /// Host-issued trims served.
    pub host_trims: u64,
    /// Garbage-collection invocations (victim erasures).
    pub gc_invocations: u64,
    /// Pages migrated by garbage collection (valid + protected invalid).
    pub gc_page_copies: u64,
    /// Subset of `gc_page_copies` that were protected *invalid* pages —
    /// the extra cost of delayed deletion (zero for the conventional FTL).
    pub gc_protected_copies: u64,
    /// Blocks erased by garbage collection.
    pub gc_erases: u64,
    /// Blocks retired after reaching their endurance limit.
    pub bad_blocks: u64,
    /// Static wear-leveling migrations performed.
    pub wear_level_swaps: u64,
    /// Wall-clock nanoseconds spent inside garbage collection (victim
    /// selection, migration and erasure). Only accumulates when a GC pass
    /// actually collects, so workloads that never trigger GC report zero
    /// regardless of timer resolution.
    pub gc_ns: u64,
    /// Worst-case pages migrated by a single GC invocation — the tail
    /// latency a host write can absorb. Bounded by the configured
    /// `gc_migration_budget` (plus at most one block of overshoot).
    pub gc_migrations_max: u64,
    /// Power-on mounts performed (full OOB-scan rebuilds after a power
    /// cut). Zero for a drive that never lost power.
    pub mounts: u64,
    /// Mapping-table checkpoints persisted to the NAND checkpoint slots.
    /// Zero unless `FtlConfig::checkpoint_interval` is set.
    #[serde(default)]
    pub checkpoints: u64,
    /// Total checkpoint pages programmed across all checkpoints — the
    /// flash-write overhead of checkpointing.
    #[serde(default)]
    pub checkpoint_pages: u64,
    /// Budgeted pump steps executed by the incremental GC engine. Zero
    /// for the blocking GC path.
    #[serde(default)]
    pub gc_steps: u64,
    /// Times incremental GC fell back to a blocking stop-the-world drain
    /// because the free pool hit the hard floor — the safety valve the
    /// urgency ramp is supposed to keep cold.
    #[serde(default)]
    pub gc_stw_fallbacks: u64,
}

impl FtlStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Write amplification factor: `(host writes + GC copies) / host writes`.
    /// Returns 1.0 when no host writes have occurred.
    pub fn write_amplification(&self) -> f64 {
        if self.host_writes == 0 {
            1.0
        } else {
            (self.host_writes + self.gc_page_copies) as f64 / self.host_writes as f64
        }
    }

    /// A [`Display`](std::fmt::Display) wrapper prefixing every line with
    /// the owning namespace, so multi-tenant stat dumps attribute counters
    /// to a tenant instead of aggregating them anonymously.
    pub fn tagged(&self, namespace: u32) -> TaggedFtlStats<'_> {
        TaggedFtlStats {
            namespace,
            stats: self,
        }
    }
}

/// [`FtlStats`] display tagged with the namespace that owns the counters
/// (see [`FtlStats::tagged`]).
#[derive(Debug, Clone, Copy)]
pub struct TaggedFtlStats<'a> {
    namespace: u32,
    stats: &'a FtlStats,
}

impl std::fmt::Display for TaggedFtlStats<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[ns{}] {}", self.namespace, self.stats)
    }
}

/// Why garbage collection migrated and erased a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GcVictimKind {
    /// Selected by the victim-selection policy to reclaim space.
    Reclaim,
    /// Selected by static wear leveling as the coldest in-service block.
    WearLevel,
}

/// One recorded victim-selection event (see
/// `FtlConfig::record_gc_victims`). The log is the differential oracle's
/// evidence: an indexed and a legacy-scan FTL fed the same workload must
/// produce identical victim sequences.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GcVictim {
    /// What triggered the selection.
    pub kind: GcVictimKind,
    /// Raw index of the chosen block.
    pub block: u32,
}

impl std::fmt::Display for FtlStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "reads={} writes={} trims={} gc[runs={} copies={} protected={} erases={} bad={} ns={} max_migr={} steps={} stw={}] mounts={} ckpts={}/{}p WA={:.3}",
            self.host_reads,
            self.host_writes,
            self.host_trims,
            self.gc_invocations,
            self.gc_page_copies,
            self.gc_protected_copies,
            self.gc_erases,
            self.bad_blocks,
            self.gc_ns,
            self.gc_migrations_max,
            self.gc_steps,
            self.gc_stw_fallbacks,
            self.mounts,
            self.checkpoints,
            self.checkpoint_pages,
            self.write_amplification()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_amplification_formula() {
        let mut s = FtlStats::new();
        assert_eq!(s.write_amplification(), 1.0);
        s.host_writes = 100;
        s.gc_page_copies = 25;
        assert!((s.write_amplification() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_all_counters() {
        let s = FtlStats::new();
        let msg = s.to_string();
        for key in [
            "reads=",
            "writes=",
            "gc[",
            "ns=",
            "max_migr=",
            "steps=",
            "stw=",
            "mounts=",
            "WA=",
        ] {
            assert!(msg.contains(key), "missing {key} in {msg}");
        }
    }

    #[test]
    fn tagged_display_prefixes_namespace() {
        let s = FtlStats {
            host_reads: 7,
            ..FtlStats::new()
        };
        let msg = s.tagged(3).to_string();
        assert!(msg.starts_with("[ns3] "), "got {msg}");
        assert!(msg.contains("reads=7"));
    }

    #[test]
    fn gc_timing_fields_serialize() {
        let s = FtlStats {
            gc_ns: 1234,
            gc_migrations_max: 7,
            ..FtlStats::new()
        };
        let json = serde_json::to_string(&s).unwrap();
        assert!(json.contains("\"gc_ns\":1234"));
        assert!(json.contains("\"gc_migrations_max\":7"));
    }
}
