//! FTL-level statistics, including the GC page-copy counts of Fig. 9.

use serde::{Deserialize, Serialize};

/// Cumulative FTL statistics.
///
/// `gc_page_copies` is the headline metric of the paper's Fig. 9: the number
/// of pages garbage collection had to migrate. The SSD-Insider FTL reports
/// `gc_protected_copies` as the subset forced by delayed deletion (copies of
/// *invalid* pages that are still within the protection window).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FtlStats {
    /// Host-issued page reads served.
    pub host_reads: u64,
    /// Host-issued page writes served.
    pub host_writes: u64,
    /// Host-issued trims served.
    pub host_trims: u64,
    /// Garbage-collection invocations (victim erasures).
    pub gc_invocations: u64,
    /// Pages migrated by garbage collection (valid + protected invalid).
    pub gc_page_copies: u64,
    /// Subset of `gc_page_copies` that were protected *invalid* pages —
    /// the extra cost of delayed deletion (zero for the conventional FTL).
    pub gc_protected_copies: u64,
    /// Blocks erased by garbage collection.
    pub gc_erases: u64,
    /// Blocks retired after reaching their endurance limit.
    pub bad_blocks: u64,
    /// Static wear-leveling migrations performed.
    pub wear_level_swaps: u64,
}

impl FtlStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Write amplification factor: `(host writes + GC copies) / host writes`.
    /// Returns 1.0 when no host writes have occurred.
    pub fn write_amplification(&self) -> f64 {
        if self.host_writes == 0 {
            1.0
        } else {
            (self.host_writes + self.gc_page_copies) as f64 / self.host_writes as f64
        }
    }
}

impl std::fmt::Display for FtlStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "reads={} writes={} trims={} gc[runs={} copies={} protected={} erases={} bad={}] WA={:.3}",
            self.host_reads,
            self.host_writes,
            self.host_trims,
            self.gc_invocations,
            self.gc_page_copies,
            self.gc_protected_copies,
            self.gc_erases,
            self.bad_blocks,
            self.write_amplification()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_amplification_formula() {
        let mut s = FtlStats::new();
        assert_eq!(s.write_amplification(), 1.0);
        s.host_writes = 100;
        s.gc_page_copies = 25;
        assert!((s.write_amplification() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_all_counters() {
        let s = FtlStats::new();
        let msg = s.to_string();
        for key in ["reads=", "writes=", "gc[", "WA="] {
            assert!(msg.contains(key), "missing {key} in {msg}");
        }
    }
}
