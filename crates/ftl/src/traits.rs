//! The `Ftl` trait: the host-facing block interface both FTLs implement.

use crate::{FtlStats, Result};
use bytes::Bytes;
use insider_nand::{Lba, NandStats, SimTime};

/// Host-facing interface of a flash translation layer.
///
/// Both [`ConventionalFtl`](crate::ConventionalFtl) and
/// [`InsiderFtl`](crate::InsiderFtl) implement this, so experiments can swap
/// policies behind `&mut dyn Ftl`.
///
/// Each operation carries the simulated time `now`, which the SSD-Insider
/// FTL uses to stamp backup entries and retire expired ones.
pub trait Ftl {
    /// Writes one logical page.
    ///
    /// # Errors
    ///
    /// Fails if `lba` is out of range, the drive is read-only, space is
    /// exhausted, or the underlying NAND rejects an operation.
    fn write(&mut self, lba: Lba, data: Bytes, now: SimTime) -> Result<()>;

    /// Reads one logical page; `None` if the page is unmapped.
    ///
    /// # Errors
    ///
    /// Fails if `lba` is out of range or the underlying NAND read fails.
    fn read(&mut self, lba: Lba, now: SimTime) -> Result<Option<Bytes>>;

    /// Unmaps one logical page.
    ///
    /// # Errors
    ///
    /// Fails if `lba` is out of range or the drive is read-only.
    fn trim(&mut self, lba: Lba, now: SimTime) -> Result<()>;

    /// FTL-level statistics (host ops, GC cost).
    fn stats(&self) -> &FtlStats;

    /// NAND-level statistics (device ops, simulated busy time).
    fn nand_stats(&self) -> &NandStats;

    /// Number of logical pages exported to the host.
    fn logical_pages(&self) -> u64;

    /// Fraction of logical pages currently mapped.
    fn utilization(&self) -> f64;

    /// Per-block wear summary: `(min, max, mean)` erase counts.
    fn wear_summary(&self) -> (u32, u32, f64);
}
