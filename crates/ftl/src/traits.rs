//! The `Ftl` trait: the host-facing block interface both FTLs implement.

use crate::{FtlStats, GcVictim, Result};
use bytes::Bytes;
use insider_nand::{LatencySnapshot, Lba, NandStats, SimTime};

/// Host-facing interface of a flash translation layer.
///
/// Both [`ConventionalFtl`](crate::ConventionalFtl) and
/// [`InsiderFtl`](crate::InsiderFtl) implement this, so experiments can swap
/// policies behind `&mut dyn Ftl`.
///
/// Each operation carries the simulated time `now`, which the SSD-Insider
/// FTL uses to stamp backup entries and retire expired ones.
pub trait Ftl {
    /// Writes one logical page.
    ///
    /// # Errors
    ///
    /// Fails if `lba` is out of range, the drive is read-only, space is
    /// exhausted, or the underlying NAND rejects an operation.
    fn write(&mut self, lba: Lba, data: Bytes, now: SimTime) -> Result<()>;

    /// Reads one logical page; `None` if the page is unmapped.
    ///
    /// # Errors
    ///
    /// Fails if `lba` is out of range or the underlying NAND read fails.
    fn read(&mut self, lba: Lba, now: SimTime) -> Result<Option<Bytes>>;

    /// Unmaps one logical page.
    ///
    /// # Errors
    ///
    /// Fails if `lba` is out of range or the drive is read-only.
    fn trim(&mut self, lba: Lba, now: SimTime) -> Result<()>;

    /// Reads `len` consecutive logical pages starting at `lba`, in order;
    /// unmapped pages yield `None`. A zero-length extent is a no-op.
    ///
    /// The default decomposes into scalar [`read`](Ftl::read) calls; both
    /// in-tree FTLs override it with a native batch (one bounds check, one
    /// mapping-table scan, one grouped NAND submit) that returns exactly the
    /// same payloads and statistics.
    ///
    /// # Errors
    ///
    /// Fails if any page of the extent is out of range or a NAND read fails.
    fn read_extent(&mut self, lba: Lba, len: u32, now: SimTime) -> Result<Vec<Option<Bytes>>> {
        (0..len as u64)
            .map(|i| self.read(lba.offset(i), now))
            .collect()
    }

    /// Writes `data.len()` consecutive logical pages starting at `lba`,
    /// `data[i]` landing at `lba + i`. An empty extent is a no-op.
    ///
    /// The default decomposes into scalar [`write`](Ftl::write) calls; the
    /// native overrides batch the mapping updates and issue one grouped
    /// NAND submit per extent.
    ///
    /// # Errors
    ///
    /// Fails if the extent exceeds the logical range, the drive is
    /// read-only, any payload exceeds the page size, or space is exhausted.
    fn write_extent(&mut self, lba: Lba, data: &[Bytes], now: SimTime) -> Result<()> {
        for (i, page) in data.iter().enumerate() {
            self.write(lba.offset(i as u64), page.clone(), now)?;
        }
        Ok(())
    }

    /// Unmaps `len` consecutive logical pages starting at `lba`. A
    /// zero-length extent is a no-op.
    ///
    /// # Errors
    ///
    /// Fails if the extent exceeds the logical range or the drive is
    /// read-only.
    fn trim_extent(&mut self, lba: Lba, len: u32, now: SimTime) -> Result<()> {
        for i in 0..len as u64 {
            self.trim(lba.offset(i), now)?;
        }
        Ok(())
    }

    /// Simulates a sudden power loss followed by a power-on mount.
    ///
    /// Every DRAM structure — the mapping table, per-block bookkeeping, the
    /// GC victim index and (for the SSD-Insider FTL) the recovery queue —
    /// is dropped and rebuilt from the per-page OOB records on flash. `now`
    /// is the power-up time, which anchors the rebuilt protection window.
    ///
    /// Acknowledged writes (those whose program completed before the cut)
    /// survive; an operation interrupted by the cut is cleanly absent.
    ///
    /// # Errors
    ///
    /// Fails only on internal inconsistencies surfaced by the OOB scan.
    fn power_cut(&mut self, now: SimTime) -> Result<()>;

    /// Drains the device command scheduler: every queued command is
    /// finalized and folded into the latency histograms. Call before
    /// reading a [`latency_snapshot`](Ftl::latency_snapshot) so in-flight
    /// tails are not silently dropped. A no-op for FTLs without a scheduled
    /// device (the default).
    fn sync(&mut self) {}

    /// Per-command completion-latency percentiles from the device command
    /// scheduler, or `None` when the device runs the legacy makespan model
    /// (the default for implementors without a scheduled device).
    fn latency_snapshot(&self) -> Option<LatencySnapshot> {
        None
    }

    /// Latency percentiles over *host-issued* commands only — GC-internal
    /// reads, programs and erases excluded. `None` for implementors without
    /// a scheduled device (the default).
    fn host_latency_snapshot(&self) -> Option<LatencySnapshot> {
        None
    }

    /// Normalized garbage-collection debt in `[0, 1]`: `0.0` while the
    /// free-block pool sits at or above the incremental-GC low watermark,
    /// rising linearly to `1.0` as it approaches exhaustion. Write pacing
    /// scales foreground throttling by this. The default (for FTLs without
    /// background GC) reports no debt.
    fn gc_debt(&self) -> f64 {
        0.0
    }

    /// FTL-level statistics (host ops, GC cost).
    fn stats(&self) -> &FtlStats;

    /// NAND-level statistics (device ops, simulated busy time).
    fn nand_stats(&self) -> &NandStats;

    /// Number of logical pages exported to the host.
    fn logical_pages(&self) -> u64;

    /// Fraction of logical pages currently mapped.
    fn utilization(&self) -> f64;

    /// Per-block wear summary: `(min, max, mean)` erase counts.
    fn wear_summary(&self) -> (u32, u32, f64);

    /// The recorded GC victim log, in selection order. Empty unless the FTL
    /// was configured with `FtlConfig::record_gc_victims(true)`; the
    /// differential GC tests replay identical workloads on an indexed and a
    /// legacy-scan FTL and require these logs to match exactly.
    fn gc_victims(&self) -> &[GcVictim] {
        &[]
    }
}
