//! FTL configuration.

use insider_nand::{Geometry, NandConfig, SchedMode, SimTime};
use serde::{Deserialize, Serialize};

/// Garbage-collection victim-selection policy.
///
/// The paper's prototype uses greedy selection ("page-level mapping with
/// greedy victim selection", §V-C footnote); the alternatives are provided
/// for the design-space ablation (`cargo run -p insider-bench --bin
/// ablation_gc`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum GcPolicy {
    /// Pick the block with the most immediately reclaimable pages.
    #[default]
    Greedy,
    /// Pick the least-recently-opened block with any reclaimable page.
    Fifo,
    /// Classic cost-benefit: maximize
    /// `reclaimable × age / (migration cost + 1)` — prefers old,
    /// mostly-dead blocks, tolerating slightly fuller victims when cold.
    CostBenefit,
}

impl GcPolicy {
    /// Display name for reports.
    pub fn name(self) -> &'static str {
        match self {
            GcPolicy::Greedy => "greedy",
            GcPolicy::Fifo => "fifo",
            GcPolicy::CostBenefit => "cost-benefit",
        }
    }
}

impl std::fmt::Display for GcPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Configuration shared by both FTL variants.
///
/// # Example
///
/// ```rust
/// use insider_ftl::FtlConfig;
/// use insider_nand::{Geometry, SimTime};
///
/// let cfg = FtlConfig::new(Geometry::tiny())
///     .over_provisioning(0.10)
///     .protection_window(SimTime::from_secs(10));
/// assert!(cfg.logical_pages() < Geometry::tiny().total_pages());
/// ```
#[derive(Debug, Clone)]
pub struct FtlConfig {
    nand: NandConfig,
    over_provisioning: f64,
    gc_reserve_blocks: u32,
    protection_window: SimTime,
    gc_policy: GcPolicy,
    wear_leveling_threshold: Option<u32>,
    gc_victim_index: bool,
    gc_migration_budget: Option<u64>,
    record_gc_victims: bool,
    copy_payloads: bool,
    checkpoint_interval: Option<u64>,
    mount_threads: usize,
    mount_from_checkpoint: bool,
    incremental_gc: bool,
    gc_low_water_extra: u32,
    gc_step_pages: u32,
    write_pacing_pages_per_sec: u64,
    write_pacing_burst: u64,
}

impl FtlConfig {
    /// Configuration with default NAND timings, 7 % over-provisioning,
    /// a 2-block GC reserve and the paper's 10 s protection window.
    pub fn new(geometry: Geometry) -> Self {
        Self::with_nand(NandConfig::new(geometry))
    }

    /// Configuration over an explicit NAND configuration (custom latencies,
    /// endurance, fault plans are installed on the device afterwards).
    pub fn with_nand(nand: NandConfig) -> Self {
        FtlConfig {
            nand,
            over_provisioning: 0.07,
            gc_reserve_blocks: 2,
            protection_window: SimTime::from_secs(10),
            gc_policy: GcPolicy::Greedy,
            wear_leveling_threshold: None,
            gc_victim_index: true,
            gc_migration_budget: None,
            record_gc_victims: false,
            copy_payloads: false,
            checkpoint_interval: None,
            mount_threads: 1,
            mount_from_checkpoint: true,
            incremental_gc: false,
            gc_low_water_extra: 2,
            gc_step_pages: 4,
            write_pacing_pages_per_sec: 0,
            write_pacing_burst: 32,
        }
    }

    /// Sets the over-provisioning ratio (fraction of raw capacity hidden
    /// from the host).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= ratio < 1.0`.
    pub fn over_provisioning(mut self, ratio: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&ratio),
            "over-provisioning ratio must be in [0, 1)"
        );
        self.over_provisioning = ratio;
        self
    }

    /// Sets how many free blocks garbage collection keeps in reserve.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is zero.
    pub fn gc_reserve_blocks(mut self, blocks: u32) -> Self {
        assert!(blocks >= 1, "gc reserve must be at least one block");
        self.gc_reserve_blocks = blocks;
        self
    }

    /// Sets the delayed-deletion protection window (how long pre-overwrite
    /// versions are kept recoverable). The paper uses 10 seconds.
    pub fn protection_window(mut self, window: SimTime) -> Self {
        self.protection_window = window;
        self
    }

    /// Sets the garbage-collection victim-selection policy (default greedy,
    /// as in the paper's prototype).
    pub fn gc_policy(mut self, policy: GcPolicy) -> Self {
        self.gc_policy = policy;
        self
    }

    /// The garbage-collection policy.
    pub fn gc_policy_ref(&self) -> GcPolicy {
        self.gc_policy
    }

    /// Enables static wear leveling: after garbage collection, if the
    /// erase-count spread (max − min) exceeds `threshold`, the coldest
    /// in-service block is migrated and erased so it rejoins the hot
    /// rotation. Disabled by default (the paper's prototype has none).
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is zero.
    pub fn wear_leveling(mut self, threshold: u32) -> Self {
        assert!(threshold >= 1, "wear-leveling threshold must be at least 1");
        self.wear_leveling_threshold = Some(threshold);
        self
    }

    /// The static wear-leveling threshold, if enabled.
    pub fn wear_leveling_threshold(&self) -> Option<u32> {
        self.wear_leveling_threshold
    }

    /// Selects between the incrementally maintained victim index (`true`,
    /// the default) and the legacy full-device scan (`false`) for GC victim
    /// selection and wear-leveling extremes. The scan is kept as the
    /// differential oracle: both paths must pick identical victims, which
    /// debug builds assert on every selection.
    pub fn gc_victim_index(mut self, enabled: bool) -> Self {
        self.gc_victim_index = enabled;
        self
    }

    /// Whether GC victim selection uses the incremental index.
    pub fn victim_index_enabled(&self) -> bool {
        self.gc_victim_index
    }

    /// Caps the pages a single GC invocation may migrate
    /// (`max_migrations_per_invocation`). Once the cap is hit, collection
    /// stops as soon as the *hard* floor — enough free blocks for the
    /// triggering write — is met, deferring the rest of the reclamation to
    /// later invocations so one extent write cannot absorb an unbounded
    /// migration storm. Wear leveling is skipped in invocations that
    /// exhaust the cap. Unlimited by default.
    ///
    /// The cap is checked between victims, so an invocation can overshoot
    /// by at most one block's worth of pages.
    ///
    /// # Panics
    ///
    /// Panics if `pages` is zero.
    pub fn gc_migration_budget(mut self, pages: u64) -> Self {
        assert!(pages >= 1, "gc migration budget must be at least one page");
        self.gc_migration_budget = Some(pages);
        self
    }

    /// The per-invocation GC migration cap, if one is set.
    pub fn gc_migration_budget_pages(&self) -> Option<u64> {
        self.gc_migration_budget
    }

    /// Records every GC and wear-leveling victim in an in-memory log
    /// (see `gc_victims` on the FTLs). Off by default; the differential
    /// oracle tests and the GC benchmark turn it on to prove the indexed
    /// and legacy-scan selectors produce identical victim sequences.
    pub fn record_gc_victims(mut self, enabled: bool) -> Self {
        self.record_gc_victims = enabled;
        self
    }

    /// Whether GC victim recording is enabled.
    pub fn gc_victim_recording(&self) -> bool {
        self.record_gc_victims
    }

    /// Selects the NAND command-scheduling model (see
    /// [`SchedMode`]): `Legacy` keeps the original per-die makespan
    /// estimate, `InOrder` queues commands per die in submission order, and
    /// `OutOfOrder` (the default) additionally lets reads overtake queued
    /// mutations on the same die when no dependency forbids it.
    pub fn scheduler(mut self, mode: SchedMode) -> Self {
        self.nand = self.nand.scheduler(mode);
        self
    }

    /// Caps the simulated host queue depth used by the command scheduler's
    /// closed-loop throttle (default 32).
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.nand = self.nand.queue_depth(depth);
        self
    }

    /// Records every scheduled NAND command with its issue/complete
    /// timestamps (see `take_captured_commands` on the FTLs). Off by
    /// default; the scheduler-oracle tests turn it on.
    pub fn capture_commands(mut self, enabled: bool) -> Self {
        self.nand = self.nand.capture_commands(enabled);
        self
    }

    /// Forces the FTL to deep-copy every payload at each internal hop
    /// instead of passing refcounted buffer handles — the legacy data path,
    /// kept as the baseline arm of the zero-copy benchmark. Off by default.
    pub fn copy_payloads(mut self, enabled: bool) -> Self {
        self.copy_payloads = enabled;
        self
    }

    /// Whether payloads are deep-copied at internal hops (benchmark
    /// baseline) instead of moved by reference.
    pub fn copy_payloads_enabled(&self) -> bool {
        self.copy_payloads
    }

    /// Enables periodic mapping-table checkpoints: after every `pages`
    /// host page writes the FTL persists a sequence-stamped, CRC-guarded
    /// snapshot of its OOB history to one of the device's two checkpoint
    /// slots, and a later mount replays only the OOB *tail* written since
    /// (falling back to a full scan when no valid checkpoint exists).
    /// Disabled by default — without it mount behavior is byte-identical
    /// to the pre-checkpoint implementation.
    ///
    /// # Panics
    ///
    /// Panics if `pages` is zero.
    pub fn checkpoint_interval(mut self, pages: u64) -> Self {
        assert!(pages >= 1, "checkpoint interval must be at least one page");
        self.checkpoint_interval = Some(pages);
        self
    }

    /// The checkpoint trigger interval in host page writes, if enabled.
    pub fn checkpoint_interval_pages(&self) -> Option<u64> {
        self.checkpoint_interval
    }

    /// Sets how many threads the mount-time OOB scan shards across.
    /// `1` (the default) keeps the legacy serial scan — every spare-area
    /// read individually charged through the command path; `0` picks the
    /// host's available parallelism; any other value shards the scan into
    /// that many contiguous block ranges with bulk charging. All settings
    /// produce identical mounted state.
    pub fn mount_threads(mut self, threads: usize) -> Self {
        self.mount_threads = threads;
        self
    }

    /// The configured mount scan thread count (`1` = legacy serial).
    pub fn mount_threads_count(&self) -> usize {
        self.mount_threads
    }

    /// When checkpointing is enabled, controls whether mount actually
    /// *loads* the newest valid checkpoint (`true`, the default) or
    /// ignores it and rebuilds from a full OOB scan (`false`). The `false`
    /// arm exists as the differential oracle: both settings must produce
    /// identical mounted state.
    pub fn mount_from_checkpoint(mut self, enabled: bool) -> Self {
        self.mount_from_checkpoint = enabled;
        self
    }

    /// Whether mount loads checkpoints (vs the full-scan oracle arm).
    pub fn mount_from_checkpoint_enabled(&self) -> bool {
        self.mount_from_checkpoint
    }

    /// Switches garbage collection from stop-the-world bursts to the
    /// incremental background engine: foreground writes pump a resumable
    /// `GcJob` in small budgeted steps once the free pool sinks below the
    /// low watermark (reserve + [`gc_low_water_extra`]), with an urgency
    /// ramp and a blocking fallback at reserve exhaustion. Off by default —
    /// the blocking path stays byte-identical to earlier behavior.
    ///
    /// [`gc_low_water_extra`]: Self::gc_low_water_extra
    pub fn incremental_gc(mut self, enabled: bool) -> Self {
        self.incremental_gc = enabled;
        self
    }

    /// Whether the incremental GC engine is enabled.
    pub fn incremental_gc_enabled(&self) -> bool {
        self.incremental_gc
    }

    /// Sets how many blocks *above* the GC reserve the incremental engine
    /// starts working in the background (the low watermark is
    /// `gc_reserve + extra`). `0` makes incremental GC trigger exactly
    /// where the blocking path does — the degenerate configuration the
    /// differential oracle pins. Default 2.
    pub fn gc_low_water_extra(mut self, extra: u32) -> Self {
        self.gc_low_water_extra = extra;
        self
    }

    /// Blocks above the GC reserve at which incremental GC engages.
    pub fn gc_low_water_extra_blocks(&self) -> u32 {
        self.gc_low_water_extra
    }

    /// Sets the base page budget of one incremental GC step (default 4).
    /// The effective budget per foreground write grows with urgency as the
    /// free pool sinks below the low watermark.
    ///
    /// # Panics
    ///
    /// Panics if `pages` is zero.
    pub fn gc_step_pages(mut self, pages: u32) -> Self {
        assert!(pages >= 1, "gc step budget must be at least one page");
        self.gc_step_pages = pages;
        self
    }

    /// The base incremental GC step budget, in pages.
    pub fn gc_step_budget_pages(&self) -> u32 {
        self.gc_step_pages
    }

    /// Enables erase-suspend/resume in the NAND scheduler: an out-of-order
    /// read arriving while an erase is mid-pulse on its die preempts it
    /// (never an erase of the read's own block) at the configured resume
    /// penalty. Timing only; off by default.
    pub fn erase_suspend(mut self, enabled: bool) -> Self {
        self.nand = self.nand.erase_suspend(enabled);
        self
    }

    /// Sets the erase resume penalty in nanoseconds (default 50 µs).
    pub fn erase_resume_ns(mut self, ns: u64) -> Self {
        self.nand = self.nand.erase_resume_ns(ns);
        self
    }

    /// Caps how many times one erase may be suspended (default 3).
    ///
    /// # Panics
    ///
    /// Panics if `max` is zero.
    pub fn max_erase_suspends(mut self, max: u32) -> Self {
        self.nand = self.nand.max_erase_suspends(max);
        self
    }

    /// Enables write pacing: the device-level write path drains a token
    /// bucket refilled at `pages_per_sec` (scaled down as GC debt rises)
    /// and stalls foreground programs once the bucket runs dry, smoothing
    /// the latency tail instead of slamming into the reserve wall.
    /// `0` (the default) disables pacing.
    pub fn write_pacing(mut self, pages_per_sec: u64) -> Self {
        self.write_pacing_pages_per_sec = pages_per_sec;
        self
    }

    /// The pacing refill rate in pages per second (`0` = disabled).
    pub fn write_pacing_rate(&self) -> u64 {
        self.write_pacing_pages_per_sec
    }

    /// Sets the pacing token-bucket capacity in pages (default 32): bursts
    /// up to this size pass unthrottled even at full debt.
    ///
    /// # Panics
    ///
    /// Panics if `pages` is zero.
    pub fn write_pacing_burst(mut self, pages: u64) -> Self {
        assert!(pages >= 1, "pacing burst must be at least one page");
        self.write_pacing_burst = pages;
        self
    }

    /// The pacing token-bucket capacity, in pages.
    pub fn write_pacing_burst_pages(&self) -> u64 {
        self.write_pacing_burst
    }

    /// The NAND configuration.
    pub fn nand(&self) -> &NandConfig {
        &self.nand
    }

    /// The device geometry.
    pub fn geometry(&self) -> &Geometry {
        self.nand.geometry()
    }

    /// The same configuration (timings, over-provisioning, GC policy,
    /// protection window, …) over a different geometry. Namespace
    /// partitioning uses this to hand each shard an equal slice of the
    /// physical drive without disturbing any other knob.
    pub fn with_geometry(mut self, geometry: Geometry) -> Self {
        self.nand = self.nand.with_geometry(geometry);
        self
    }

    /// The over-provisioning ratio.
    pub fn over_provisioning_ratio(&self) -> f64 {
        self.over_provisioning
    }

    /// The GC free-block reserve.
    pub fn gc_reserve(&self) -> u32 {
        self.gc_reserve_blocks
    }

    /// The protection window.
    pub fn window(&self) -> SimTime {
        self.protection_window
    }

    /// Number of logical pages exported to the host.
    ///
    /// At least one block's worth of pages (plus the GC reserve) is always
    /// held back, even with zero over-provisioning, so GC can make progress.
    pub fn logical_pages(&self) -> u64 {
        let g = self.geometry();
        let total = g.total_pages();
        let op_pages = (total as f64 * self.over_provisioning).ceil() as u64;
        let reserve_pages = (self.gc_reserve_blocks as u64 + 1) * g.pages_per_block() as u64;
        total.saturating_sub(op_pages.max(reserve_pages))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logical_pages_respects_over_provisioning() {
        let g = Geometry::builder()
            .blocks_per_chip(100)
            .pages_per_block(10)
            .build(); // 1000 pages
        let cfg = FtlConfig::new(g)
            .over_provisioning(0.10)
            .gc_reserve_blocks(2);
        // 10% of 1000 = 100 held back > 3 blocks * 10 pages reserve.
        assert_eq!(cfg.logical_pages(), 900);
    }

    #[test]
    fn reserve_floor_applies_with_tiny_op() {
        let g = Geometry::builder()
            .blocks_per_chip(100)
            .pages_per_block(10)
            .build();
        let cfg = FtlConfig::new(g)
            .over_provisioning(0.0)
            .gc_reserve_blocks(2);
        // (2 + 1) blocks * 10 pages held back.
        assert_eq!(cfg.logical_pages(), 970);
    }

    #[test]
    #[should_panic(expected = "over-provisioning")]
    fn invalid_op_ratio_panics() {
        FtlConfig::new(Geometry::tiny()).over_provisioning(1.0);
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn zero_reserve_panics() {
        FtlConfig::new(Geometry::tiny()).gc_reserve_blocks(0);
    }

    #[test]
    fn default_window_is_ten_seconds() {
        let cfg = FtlConfig::new(Geometry::tiny());
        assert_eq!(cfg.window(), SimTime::from_secs(10));
    }

    #[test]
    fn wear_leveling_knob() {
        let cfg = FtlConfig::new(Geometry::tiny());
        assert_eq!(cfg.wear_leveling_threshold(), None);
        let cfg = cfg.wear_leveling(8);
        assert_eq!(cfg.wear_leveling_threshold(), Some(8));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_wear_threshold_panics() {
        FtlConfig::new(Geometry::tiny()).wear_leveling(0);
    }

    #[test]
    fn victim_index_defaults_on_and_is_switchable() {
        let cfg = FtlConfig::new(Geometry::tiny());
        assert!(cfg.victim_index_enabled());
        let cfg = cfg.gc_victim_index(false);
        assert!(!cfg.victim_index_enabled());
    }

    #[test]
    fn migration_budget_knob() {
        let cfg = FtlConfig::new(Geometry::tiny());
        assert_eq!(cfg.gc_migration_budget_pages(), None);
        let cfg = cfg.gc_migration_budget(64);
        assert_eq!(cfg.gc_migration_budget_pages(), Some(64));
    }

    #[test]
    #[should_panic(expected = "at least one page")]
    fn zero_migration_budget_panics() {
        FtlConfig::new(Geometry::tiny()).gc_migration_budget(0);
    }

    #[test]
    fn victim_recording_defaults_off() {
        let cfg = FtlConfig::new(Geometry::tiny());
        assert!(!cfg.gc_victim_recording());
        assert!(cfg.record_gc_victims(true).gc_victim_recording());
    }

    #[test]
    fn scheduler_and_copy_knobs_pass_through() {
        let cfg = FtlConfig::new(Geometry::tiny());
        assert_eq!(cfg.nand().sched_mode(), SchedMode::OutOfOrder);
        assert!(!cfg.copy_payloads_enabled());
        let cfg = cfg
            .scheduler(SchedMode::InOrder)
            .queue_depth(8)
            .capture_commands(true)
            .copy_payloads(true);
        assert_eq!(cfg.nand().sched_mode(), SchedMode::InOrder);
        assert_eq!(cfg.nand().queue_depth_limit(), 8);
        assert!(cfg.copy_payloads_enabled());
    }

    #[test]
    #[should_panic(expected = "queue depth")]
    fn zero_queue_depth_panics() {
        let _ = FtlConfig::new(Geometry::tiny()).queue_depth(0);
    }

    #[test]
    fn checkpoint_knobs_default_off_and_are_settable() {
        let cfg = FtlConfig::new(Geometry::tiny());
        assert_eq!(cfg.checkpoint_interval_pages(), None);
        assert_eq!(cfg.mount_threads_count(), 1);
        assert!(cfg.mount_from_checkpoint_enabled());
        let cfg = cfg
            .checkpoint_interval(64)
            .mount_threads(0)
            .mount_from_checkpoint(false);
        assert_eq!(cfg.checkpoint_interval_pages(), Some(64));
        assert_eq!(cfg.mount_threads_count(), 0);
        assert!(!cfg.mount_from_checkpoint_enabled());
    }

    #[test]
    #[should_panic(expected = "at least one page")]
    fn zero_checkpoint_interval_panics() {
        FtlConfig::new(Geometry::tiny()).checkpoint_interval(0);
    }

    #[test]
    fn incremental_gc_knobs_default_off_and_are_settable() {
        let cfg = FtlConfig::new(Geometry::tiny());
        assert!(!cfg.incremental_gc_enabled());
        assert_eq!(cfg.gc_low_water_extra_blocks(), 2);
        assert_eq!(cfg.gc_step_budget_pages(), 4);
        let cfg = cfg
            .incremental_gc(true)
            .gc_low_water_extra(0)
            .gc_step_pages(16);
        assert!(cfg.incremental_gc_enabled());
        assert_eq!(cfg.gc_low_water_extra_blocks(), 0);
        assert_eq!(cfg.gc_step_budget_pages(), 16);
    }

    #[test]
    #[should_panic(expected = "at least one page")]
    fn zero_gc_step_budget_panics() {
        FtlConfig::new(Geometry::tiny()).gc_step_pages(0);
    }

    #[test]
    fn erase_suspend_passes_through_to_nand() {
        let cfg = FtlConfig::new(Geometry::tiny());
        assert!(!cfg.nand().erase_suspend_enabled());
        let cfg = cfg
            .erase_suspend(true)
            .erase_resume_ns(80_000)
            .max_erase_suspends(2);
        assert!(cfg.nand().erase_suspend_enabled());
        assert_eq!(cfg.nand().erase_resume_latency_ns(), 80_000);
        assert_eq!(cfg.nand().max_erase_suspends_limit(), 2);
    }

    #[test]
    fn write_pacing_knobs() {
        let cfg = FtlConfig::new(Geometry::tiny());
        assert_eq!(cfg.write_pacing_rate(), 0);
        assert_eq!(cfg.write_pacing_burst_pages(), 32);
        let cfg = cfg.write_pacing(10_000).write_pacing_burst(8);
        assert_eq!(cfg.write_pacing_rate(), 10_000);
        assert_eq!(cfg.write_pacing_burst_pages(), 8);
    }

    #[test]
    #[should_panic(expected = "at least one page")]
    fn zero_pacing_burst_panics() {
        FtlConfig::new(Geometry::tiny()).write_pacing_burst(0);
    }

    #[test]
    fn default_policy_is_greedy_and_settable() {
        let cfg = FtlConfig::new(Geometry::tiny());
        assert_eq!(cfg.gc_policy_ref(), GcPolicy::Greedy);
        let cfg = cfg.gc_policy(GcPolicy::CostBenefit);
        assert_eq!(cfg.gc_policy_ref(), GcPolicy::CostBenefit);
        assert_eq!(GcPolicy::Fifo.to_string(), "fifo");
    }
}
