//! FTL error types.

use insider_nand::{Lba, NandError};
use std::error::Error;
use std::fmt;

/// Errors returned by FTL operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FtlError {
    /// The logical address exceeds the exported capacity.
    LbaOutOfRange {
        /// The offending address.
        lba: Lba,
        /// Number of logical pages exported to the host.
        logical_pages: u64,
    },
    /// The drive is in read-only mode (post-detection lockdown); writes and
    /// trims are rejected.
    ReadOnly,
    /// No reclaimable space is left: every candidate GC victim would yield
    /// zero free pages (e.g. the drive is full of live or protected data).
    NoReclaimableSpace,
    /// A garbage-collection victim hit its endurance limit and was retired
    /// as a bad block (internal control flow; GC retries another victim).
    BadBlockRetired,
    /// An underlying NAND operation failed.
    Nand(NandError),
}

impl fmt::Display for FtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FtlError::LbaOutOfRange { lba, logical_pages } => write!(
                f,
                "{lba} out of range (device exports {logical_pages} logical pages)"
            ),
            FtlError::ReadOnly => write!(f, "drive is read-only pending recovery"),
            FtlError::NoReclaimableSpace => {
                write!(f, "garbage collection found no reclaimable space")
            }
            FtlError::BadBlockRetired => {
                write!(f, "victim block hit its endurance limit and was retired")
            }
            FtlError::Nand(e) => write!(f, "nand: {e}"),
        }
    }
}

impl Error for FtlError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FtlError::Nand(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NandError> for FtlError {
    fn from(e: NandError) -> Self {
        FtlError::Nand(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insider_nand::Ppa;

    #[test]
    fn displays_and_sources() {
        let e = FtlError::LbaOutOfRange {
            lba: Lba::new(10),
            logical_pages: 5,
        };
        assert!(e.to_string().contains("lba:10"));
        assert!(e.source().is_none());

        let e = FtlError::from(NandError::ReadUnwritten(Ppa::new(1)));
        assert!(e.to_string().starts_with("nand:"));
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FtlError>();
    }
}
