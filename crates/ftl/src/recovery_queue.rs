//! The recovery queue: SSD-Insider's delayed-deletion backup log.
//!
//! Every host write that supersedes an existing mapping (and every trim)
//! appends a [`BackupEntry`] recording the logical address, the physical page
//! that held the *previous* version, and a timestamp. While an entry is in
//! the queue, its old physical page is **protected**: garbage collection must
//! migrate it instead of discarding it. Entries older than the protection
//! window are retired, releasing their pages for normal reclamation.

use insider_nand::{Lba, Ppa, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};

/// One backup record in the recovery queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BackupEntry {
    /// The logical page that was overwritten or trimmed.
    pub lba: Lba,
    /// Physical page holding the previous version, or `None` if the logical
    /// page had never been mapped (a first write — rollback unmaps it).
    pub old: Option<Ppa>,
    /// When the superseding operation happened.
    pub stamp: SimTime,
}

/// Time-ordered queue of [`BackupEntry`] records with an index from protected
/// physical pages back to their entries.
///
/// Entries live in a `VecDeque` in insertion (= time) order; a monotonically
/// increasing sequence number addresses them stably across front retirement
/// (`index = seq − front_seq`), so push, retire and the protected-page
/// lookup are all O(1) — this sits on the write hot path.
///
/// # Example
///
/// ```rust
/// use insider_ftl::RecoveryQueue;
/// use insider_nand::{Lba, Ppa, SimTime};
///
/// let mut q = RecoveryQueue::new();
/// q.push(Lba::new(7), Some(Ppa::new(21)), SimTime::from_secs(3));
/// assert!(q.is_protected(Ppa::new(21)));
///
/// // 10 s later the entry retires and the old page becomes reclaimable.
/// // The retired entries come back so the caller can release any
/// // per-block protected-count bookkeeping it keeps.
/// let retired = q.retire_before(SimTime::from_secs(13));
/// assert_eq!(retired.len(), 1);
/// assert_eq!(retired[0].old, Some(Ppa::new(21)));
/// assert!(!q.is_protected(Ppa::new(21)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct RecoveryQueue {
    entries: VecDeque<BackupEntry>,
    by_old_ppa: HashMap<Ppa, u64>,
    /// Sequence number of the entry currently at the front of the deque.
    front_seq: u64,
    next_seq: u64,
    /// When non-zero, protected pages are also counted per erase block
    /// (block = `ppa / pages_per_block`) so garbage collection can pick
    /// victims in O(blocks) instead of O(pages).
    pages_per_block: u64,
    per_block: HashMap<u32, u32>,
}

impl RecoveryQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty queue that additionally maintains per-block protected-page
    /// counts for `pages_per_block`-page erase blocks.
    ///
    /// # Panics
    ///
    /// Panics if `pages_per_block` is zero.
    pub fn with_block_size(pages_per_block: u32) -> Self {
        assert!(pages_per_block > 0, "pages per block must be non-zero");
        RecoveryQueue {
            pages_per_block: pages_per_block as u64,
            ..Self::default()
        }
    }

    fn block_of(&self, ppa: Ppa) -> Option<u32> {
        (self.pages_per_block > 0).then(|| (ppa.index() / self.pages_per_block) as u32)
    }

    fn count_block(&mut self, ppa: Ppa, delta: i32) {
        if let Some(block) = self.block_of(ppa) {
            let slot = self.per_block.entry(block).or_insert(0);
            *slot = slot
                .checked_add_signed(delta)
                .expect("per-block protected count underflow");
            if *slot == 0 {
                self.per_block.remove(&block);
            }
        }
    }

    /// Number of protected pages inside erase block `block`. Always zero
    /// unless the queue was built with [`RecoveryQueue::with_block_size`].
    pub fn protected_in_block(&self, block: u32) -> u32 {
        self.per_block.get(&block).copied().unwrap_or(0)
    }

    /// Whether this queue maintains per-block protected-page counts (built
    /// with [`RecoveryQueue::with_block_size`]). Consumers that mirror those
    /// counts — the FTL's incremental victim index — can only reconcile
    /// against a block-tracking queue.
    pub fn tracks_blocks(&self) -> bool {
        self.pages_per_block > 0
    }

    /// Number of entries currently queued.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Appends a backup entry.
    ///
    /// # Panics
    ///
    /// Panics if `old` is already protected by another entry — a physical
    /// page can be the pre-image of at most one overwrite, so a duplicate
    /// indicates an FTL accounting bug.
    pub fn push(&mut self, lba: Lba, old: Option<Ppa>, stamp: SimTime) {
        let seq = self.next_seq;
        self.next_seq += 1;
        if let Some(ppa) = old {
            let prev = self.by_old_ppa.insert(ppa, seq);
            assert!(
                prev.is_none(),
                "physical page {ppa} already protected by another backup entry"
            );
            self.count_block(ppa, 1);
        }
        self.entries.push_back(BackupEntry { lba, old, stamp });
    }

    /// Appends one backup entry per page of an extent write in a single
    /// vectorized pass: `olds[i]` is the pre-image of `lba + i`, and every
    /// entry carries the same request timestamp.
    ///
    /// # Panics
    ///
    /// Panics like [`push`](Self::push) if any pre-image is already
    /// protected.
    pub fn push_extent(&mut self, lba: Lba, olds: &[Option<Ppa>], stamp: SimTime) {
        self.entries.reserve(olds.len());
        for (i, &old) in olds.iter().enumerate() {
            self.push(lba.offset(i as u64), old, stamp);
        }
    }

    /// Whether `ppa` holds a protected old version.
    pub fn is_protected(&self, ppa: Ppa) -> bool {
        self.by_old_ppa.contains_key(&ppa)
    }

    /// Number of protected physical pages.
    pub fn protected_count(&self) -> usize {
        self.by_old_ppa.len()
    }

    /// Redirects the protection of a migrated old version: garbage collection
    /// moved the page at `from` to `to`, so the backup entry must now point
    /// at `to`.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not protected, or if `to` is already protected.
    pub fn relocate(&mut self, from: Ppa, to: Ppa) {
        let seq = self
            .by_old_ppa
            .remove(&from)
            .unwrap_or_else(|| panic!("relocating unprotected page {from}"));
        let idx = (seq - self.front_seq) as usize;
        let entry = self
            .entries
            .get_mut(idx)
            .expect("index points at live entry");
        entry.old = Some(to);
        let prev = self.by_old_ppa.insert(to, seq);
        assert!(prev.is_none(), "relocation target {to} already protected");
        self.count_block(from, -1);
        self.count_block(to, 1);
    }

    /// Retires (drops) all entries with `stamp < cutoff`, releasing their
    /// protected pages.
    ///
    /// Returns the retired entries in retirement (= time) order. Returning
    /// the entries — not just a count — is what lets callers that mirror
    /// protected-page counts (the FTL's incremental victim index) apply the
    /// exact per-block deltas instead of re-polling; a count alone would
    /// silently desync them. The common no-retirement case allocates
    /// nothing.
    pub fn retire_before(&mut self, cutoff: SimTime) -> Vec<BackupEntry> {
        let mut retired = Vec::new();
        while let Some(entry) = self.entries.front() {
            if entry.stamp >= cutoff {
                break;
            }
            let entry = *entry;
            if let Some(ppa) = entry.old {
                self.by_old_ppa.remove(&ppa);
                self.count_block(ppa, -1);
            }
            self.entries.pop_front();
            self.front_seq += 1;
            retired.push(entry);
        }
        retired
    }

    /// Drains every entry (oldest first), releasing all protections in one
    /// step — the bulk form of [`retire_before`](Self::retire_before) used
    /// by rollback, which must release every protection *before* it starts
    /// rewinding mappings so protected counts never exceed invalid counts
    /// mid-rewind.
    pub fn take_all(&mut self) -> Vec<BackupEntry> {
        self.front_seq = self.next_seq;
        self.by_old_ppa.clear();
        self.per_block.clear();
        self.entries.drain(..).collect()
    }

    /// Iterates entries from newest to oldest — the scan order of the
    /// paper's Fig. 5 recovery process.
    pub fn iter_newest_first(&self) -> impl Iterator<Item = &BackupEntry> {
        self.entries.iter().rev()
    }

    /// Iterates entries from oldest to newest.
    pub fn iter(&self) -> impl Iterator<Item = &BackupEntry> {
        self.entries.iter()
    }

    /// Removes every entry and protection. Used after rollback completes.
    pub fn clear(&mut self) {
        self.front_seq = self.next_seq;
        self.entries.clear();
        self.by_old_ppa.clear();
        self.per_block.clear();
    }

    /// Bytes of DRAM an on-device implementation would need per entry
    /// (LBA + PPA + timestamp packed as in the paper's Table III).
    pub const ENTRY_BYTES: usize = 12;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(lba: u64, old: Option<u64>, secs: u64) -> (Lba, Option<Ppa>, SimTime) {
        (Lba::new(lba), old.map(Ppa::new), SimTime::from_secs(secs))
    }

    #[test]
    fn push_protects_old_pages() {
        let mut q = RecoveryQueue::new();
        let (l, o, t) = e(1, Some(10), 0);
        q.push(l, o, t);
        assert_eq!(q.len(), 1);
        assert!(q.is_protected(Ppa::new(10)));
        assert_eq!(q.protected_count(), 1);
    }

    #[test]
    fn first_writes_protect_nothing() {
        let mut q = RecoveryQueue::new();
        let (l, o, t) = e(1, None, 0);
        q.push(l, o, t);
        assert_eq!(q.len(), 1);
        assert_eq!(q.protected_count(), 0);
    }

    #[test]
    #[should_panic(expected = "already protected")]
    fn duplicate_protection_panics() {
        let mut q = RecoveryQueue::new();
        q.push(Lba::new(1), Some(Ppa::new(10)), SimTime::ZERO);
        q.push(Lba::new(2), Some(Ppa::new(10)), SimTime::ZERO);
    }

    #[test]
    fn retire_releases_only_expired() {
        let mut q = RecoveryQueue::new();
        q.push(Lba::new(1), Some(Ppa::new(10)), SimTime::from_secs(0));
        q.push(Lba::new(2), Some(Ppa::new(11)), SimTime::from_secs(5));
        q.push(Lba::new(3), Some(Ppa::new(12)), SimTime::from_secs(9));
        let retired = q.retire_before(SimTime::from_secs(5));
        assert_eq!(retired.len(), 1);
        assert_eq!(retired[0].lba, Lba::new(1));
        assert_eq!(retired[0].old, Some(Ppa::new(10)));
        assert!(!q.is_protected(Ppa::new(10)));
        assert!(q.is_protected(Ppa::new(11)));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn retire_with_equal_stamp_keeps_entry() {
        let mut q = RecoveryQueue::new();
        q.push(Lba::new(1), Some(Ppa::new(10)), SimTime::from_secs(5));
        assert!(q.retire_before(SimTime::from_secs(5)).is_empty());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn retire_reports_released_ppas_in_time_order() {
        let mut q = RecoveryQueue::with_block_size(4);
        q.push(Lba::new(1), Some(Ppa::new(0)), SimTime::from_secs(0));
        q.push(Lba::new(2), None, SimTime::from_secs(1));
        q.push(Lba::new(3), Some(Ppa::new(5)), SimTime::from_secs(2));
        let retired = q.retire_before(SimTime::from_secs(10));
        let olds: Vec<Option<Ppa>> = retired.iter().map(|e| e.old).collect();
        assert_eq!(olds, vec![Some(Ppa::new(0)), None, Some(Ppa::new(5))]);
        assert_eq!(q.protected_in_block(0), 0);
        assert_eq!(q.protected_in_block(1), 0);
    }

    #[test]
    fn take_all_drains_and_releases_everything() {
        let mut q = RecoveryQueue::with_block_size(4);
        q.push(Lba::new(1), Some(Ppa::new(10)), SimTime::from_secs(1));
        q.push(Lba::new(2), Some(Ppa::new(3)), SimTime::from_secs(2));
        let entries = q.take_all();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].lba, Lba::new(1), "oldest first");
        assert!(q.is_empty());
        assert_eq!(q.protected_count(), 0);
        assert_eq!(q.protected_in_block(0), 0);
        assert_eq!(q.protected_in_block(2), 0);
        // The queue keeps working after the drain.
        q.push(Lba::new(5), Some(Ppa::new(10)), SimTime::from_secs(3));
        q.relocate(Ppa::new(10), Ppa::new(11));
        assert!(q.is_protected(Ppa::new(11)));
    }

    #[test]
    fn relocate_moves_protection() {
        let mut q = RecoveryQueue::new();
        q.push(Lba::new(1), Some(Ppa::new(10)), SimTime::ZERO);
        q.relocate(Ppa::new(10), Ppa::new(99));
        assert!(!q.is_protected(Ppa::new(10)));
        assert!(q.is_protected(Ppa::new(99)));
        let entry = q.iter().next().unwrap();
        assert_eq!(entry.old, Some(Ppa::new(99)));
    }

    #[test]
    #[should_panic(expected = "relocating unprotected")]
    fn relocate_unprotected_panics() {
        RecoveryQueue::new().relocate(Ppa::new(1), Ppa::new(2));
    }

    #[test]
    fn newest_first_iteration_order() {
        let mut q = RecoveryQueue::new();
        for i in 0..4u64 {
            q.push(Lba::new(i), Some(Ppa::new(100 + i)), SimTime::from_secs(i));
        }
        let lbas: Vec<u64> = q.iter_newest_first().map(|e| e.lba.index()).collect();
        assert_eq!(lbas, vec![3, 2, 1, 0]);
    }

    #[test]
    fn clear_drops_everything() {
        let mut q = RecoveryQueue::new();
        q.push(Lba::new(1), Some(Ppa::new(10)), SimTime::ZERO);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.protected_count(), 0);
    }

    #[test]
    fn push_extent_appends_in_lba_order_with_one_stamp() {
        let mut q = RecoveryQueue::new();
        let olds = [Some(Ppa::new(30)), None, Some(Ppa::new(32))];
        q.push_extent(Lba::new(4), &olds, SimTime::from_secs(7));
        assert_eq!(q.len(), 3);
        assert_eq!(q.protected_count(), 2);
        let entries: Vec<&BackupEntry> = q.iter().collect();
        for (i, entry) in entries.iter().enumerate() {
            assert_eq!(entry.lba, Lba::new(4 + i as u64));
            assert_eq!(entry.stamp, SimTime::from_secs(7));
        }
        assert!(q.is_protected(Ppa::new(30)));
        assert!(q.is_protected(Ppa::new(32)));
    }

    #[test]
    fn same_lba_multiple_overwrites_coexist() {
        let mut q = RecoveryQueue::new();
        q.push(Lba::new(1), Some(Ppa::new(10)), SimTime::from_secs(1));
        q.push(Lba::new(1), Some(Ppa::new(11)), SimTime::from_secs(2));
        assert_eq!(q.len(), 2);
        assert_eq!(q.protected_count(), 2);
    }
}
