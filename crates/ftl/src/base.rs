//! Machinery shared by the conventional and SSD-Insider FTLs: page
//! allocation, the reverse map, and greedy garbage collection.

use crate::checkpoint::{self, BlockMeta, Checkpoint};
use crate::config::{FtlConfig, GcPolicy};
use crate::mapping::MappingTable;
use crate::recovery_queue::{BackupEntry, RecoveryQueue};
use crate::stats::{FtlStats, GcVictim, GcVictimKind};
use crate::{FtlError, Result};
use bytes::Bytes;
use insider_nand::{
    KindLatency, LatencyHistogram, Lba, NandDevice, NandError, OobTag, PageState, Pba, Ppa,
    ScanBaseline, SimTime, CKPT_SLOTS,
};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::time::Instant;

/// Incrementally maintained GC victim candidates, bucketed by reclaimable
/// page count (`invalid − protected`).
///
/// Every closed in-service block with a non-zero reclaimable count sits in
/// `buckets[chip][reclaimable]`, ordered by a policy-dependent tie-break
/// key: the raw block index for greedy (reproducing the legacy scan's
/// first-strict-max order) and the block's open epoch for the age-based
/// policies. Candidates are bucketed *per chip* because erased blocks
/// refill that chip's free pool alone: programs cannot cross dies, so a
/// globally-best victim on an already-full chip does nothing for a dry
/// one. Selection queries one chip at a time (see
/// [`FtlBase::select_victim`] for the dryest-chip ordering). Within a
/// chip, one structure serves all three policies *exactly*:
///
/// * **Greedy** — head of the highest non-empty bucket, O(1) amortized via
///   the lazily lowered `max_r` hint.
/// * **FIFO** — open epochs are unique, and within a bucket the head holds
///   the minimum epoch, so the oldest candidate is the minimum over the
///   ≤ pages-per-block bucket heads.
/// * **Cost-benefit** — the score `r · age / (ppb − r + 1)` is, for blocks
///   in the same bucket (same `r`), strictly decreasing in epoch, so each
///   bucket's head strictly dominates the rest of its bucket; the exact
///   argmax is found by scoring one head per bucket with the same `f64`
///   expression the legacy scan evaluates, keeping scores bit-identical.
///
/// Updates (re-filing one block) are O(log B); per-chip selection is O(1)
/// for greedy and O(P) for the age-based policies, where P = pages per
/// block — versus the legacy scan's O(B) with B = total blocks.
#[derive(Debug)]
struct VictimIndex {
    /// `buckets[chip][reclaimable]` → candidates on that chip.
    buckets: Vec<Vec<BTreeSet<(u64, u32)>>>,
    /// For indexed blocks, the `(reclaimable, key)` they are filed under.
    slot: Vec<Option<(u32, u64)>>,
    /// Per-chip upper bound on the highest non-empty bucket, lowered lazily.
    max_r: Vec<usize>,
    /// Age-based policies key by epoch; greedy keys by block index.
    key_by_epoch: bool,
    blocks_per_chip: u32,
}

impl VictimIndex {
    fn new(
        total_blocks: usize,
        pages_per_block: usize,
        policy: GcPolicy,
        blocks_per_chip: u32,
    ) -> Self {
        let chips = total_blocks / blocks_per_chip as usize;
        VictimIndex {
            buckets: vec![vec![BTreeSet::new(); pages_per_block + 1]; chips],
            slot: vec![None; total_blocks],
            max_r: vec![0; chips],
            key_by_epoch: !matches!(policy, GcPolicy::Greedy),
            blocks_per_chip,
        }
    }

    fn chip_of(&self, raw: u32) -> usize {
        (raw / self.blocks_per_chip) as usize
    }

    /// Files candidate `raw` under `reclaimable`, dropping it when zero.
    fn update(&mut self, raw: u32, reclaimable: u32, epoch: u64) {
        let key = if self.key_by_epoch { epoch } else { raw as u64 };
        if reclaimable > 0 && self.slot[raw as usize] == Some((reclaimable, key)) {
            return;
        }
        self.remove(raw);
        if reclaimable > 0 {
            let chip = self.chip_of(raw);
            self.buckets[chip][reclaimable as usize].insert((key, raw));
            self.slot[raw as usize] = Some((reclaimable, key));
            self.max_r[chip] = self.max_r[chip].max(reclaimable as usize);
        }
    }

    fn remove(&mut self, raw: u32) {
        if let Some((r, key)) = self.slot[raw as usize].take() {
            let chip = self.chip_of(raw);
            self.buckets[chip][r as usize].remove(&(key, raw));
        }
    }

    /// Lowers a chip's `max_r` hint onto its highest non-empty bucket.
    fn settle(&mut self, chip: usize) {
        while self.max_r[chip] > 0 && self.buckets[chip][self.max_r[chip]].is_empty() {
            self.max_r[chip] -= 1;
        }
    }

    /// Most reclaimable pages on `chip`, lowest block index on ties.
    fn best_greedy(&mut self, chip: usize) -> Option<u32> {
        self.settle(chip);
        self.buckets[chip][self.max_r[chip]]
            .first()
            .map(|&(_, raw)| raw)
    }

    /// Oldest open epoch among `chip`'s candidates (epochs are unique).
    fn best_fifo(&mut self, chip: usize) -> Option<u32> {
        self.settle(chip);
        self.buckets[chip]
            .iter()
            .skip(1)
            .take(self.max_r[chip])
            .filter_map(BTreeSet::first)
            .min_by_key(|&&(epoch, _)| epoch)
            .map(|&(_, raw)| raw)
    }

    /// Exact cost-benefit argmax over `chip`'s bucket heads, scored with
    /// the legacy scan's expression and its lowest-block tie-break.
    fn best_cost_benefit(&mut self, chip: usize, next_epoch: u64, ppb: u32) -> Option<u32> {
        self.settle(chip);
        let mut best: Option<(u32, f64)> = None;
        for (r, bucket) in self.buckets[chip]
            .iter()
            .enumerate()
            .skip(1)
            .take(self.max_r[chip])
        {
            let Some(&(epoch, raw)) = bucket.first() else {
                continue;
            };
            let age = (next_epoch - epoch) as f64;
            let cost = (ppb - r as u32) as f64 + 1.0;
            let score = r as f64 * age / cost;
            let better = match best {
                None => true,
                Some((best_raw, s)) => score > s || (score == s && raw < best_raw),
            };
            if better {
                best = Some((raw, score));
            }
        }
        best.map(|(raw, _)| raw)
    }
}

/// Erase-count extremes maintained incrementally so wear leveling stops
/// rescanning the device: a histogram over every non-bad block (the hottest
/// extreme includes free and active blocks, like the legacy scan) and a
/// sorted set of closed in-service blocks (the coldest migration candidate,
/// with the scan's lowest-block-index tie-break).
#[derive(Debug)]
struct WearTracker {
    all: BTreeMap<u32, u32>,
    closed: BTreeMap<u32, BTreeSet<u32>>,
}

impl WearTracker {
    fn new(total_blocks: u32) -> Self {
        let mut all = BTreeMap::new();
        if total_blocks > 0 {
            all.insert(0, total_blocks);
        }
        WearTracker {
            all,
            closed: BTreeMap::new(),
        }
    }

    /// A full active block became a closed (coldest-eligible) block.
    fn close(&mut self, raw: u32, wear: u32) {
        let fresh = self.closed.entry(wear).or_default().insert(raw);
        debug_assert!(fresh, "block {raw} closed twice");
    }

    /// A closed block was erased back into the free pool; erase counts only
    /// advance on *successful* erases (the device checks endurance and
    /// injected faults first), so `wear_before + 1` is its new count.
    fn erase(&mut self, raw: u32, wear_before: u32) {
        self.remove_closed(raw, wear_before);
        self.shift_all(wear_before, 1);
    }

    /// A closed block hit its endurance limit and left service for good.
    fn retire(&mut self, raw: u32, wear: u32) {
        self.remove_closed(raw, wear);
        self.shift_all(wear, 0);
    }

    fn remove_closed(&mut self, raw: u32, wear: u32) {
        let set = self.closed.get_mut(&wear).expect("closed block tracked");
        let removed = set.remove(&raw);
        debug_assert!(removed, "closed block {raw} missing from wear tracker");
        if set.is_empty() {
            self.closed.remove(&wear);
        }
    }

    /// Moves one block out of histogram bin `wear`, into `wear + by` when
    /// `by > 0` (erase) or out of the histogram entirely (retirement).
    fn shift_all(&mut self, wear: u32, by: u32) {
        let slot = self.all.get_mut(&wear).expect("wear histogram entry");
        *slot -= 1;
        if *slot == 0 {
            self.all.remove(&wear);
        }
        if by > 0 {
            *self.all.entry(wear + by).or_insert(0) += 1;
        }
    }

    /// Highest erase count among non-bad blocks (0 when none remain).
    fn hottest(&self) -> u32 {
        self.all.keys().next_back().copied().unwrap_or(0)
    }

    /// Coldest closed in-service block `(raw, wear)`.
    fn coldest(&self) -> Option<(u32, u32)> {
        let (&wear, set) = self.closed.iter().next()?;
        set.first().map(|&raw| (raw, wear))
    }
}

/// Common FTL state: the device, the forward and reverse maps, the free-block
/// pool and the statistics. The two public FTLs compose this and differ only
/// in how they treat superseded pages.
#[derive(Debug)]
pub(crate) struct FtlBase {
    pub device: NandDevice,
    pub mapping: MappingTable,
    /// Reverse map PPA → LBA, standing in for the out-of-band (OOB) metadata
    /// real firmware writes next to each page. For a *protected invalid*
    /// page it names the logical page whose old version it holds.
    rmap: Vec<Option<Lba>>,
    /// Free-block pools, one per chip (die): allocation stripes pages
    /// across dies (one active block per die, round-robin), which is what
    /// lets a multi-channel/multi-way controller overlap NAND operations —
    /// the source of the paper's card's bandwidth.
    free: Vec<VecDeque<Pba>>,
    /// Mirror of `free` membership for O(1) lookups.
    free_flags: Vec<bool>,
    /// Cached sum of the per-chip free-pool lengths, so the GC thresholds
    /// on the write hot path cost O(1) instead of O(chips).
    free_count: usize,
    /// Blocks retired after hitting their endurance limit; never selected
    /// as GC victims and never returned to the free pool.
    bad_flags: Vec<bool>,
    /// Mirror of `active` membership per raw block index, replacing the
    /// O(chips) `active.contains` probes on the selection paths.
    active_flags: Vec<bool>,
    /// Invalid-page count per block, maintained incrementally.
    invalid_per_block: Vec<u32>,
    /// Per-block count of pages the recovery queue currently protects,
    /// mirrored here from the queue's push/retire/relocate deltas so victim
    /// scoring never polls the queue. Debug builds assert the mirror
    /// reconciles with the queue's own counts.
    protected_per_block: Vec<u32>,
    protected_total: u64,
    /// Monotone counter of block openings; `block_epoch[b]` is the epoch at
    /// which block `b` last became the active block (FIFO/cost-benefit age).
    block_epoch: Vec<u64>,
    next_epoch: u64,
    /// One active (partially programmed) block per chip.
    active: Vec<Option<Pba>>,
    /// Round-robin chip cursor for page allocation.
    next_chip: usize,
    /// Incremental victim index; the legacy scan behind
    /// `FtlConfig::gc_victim_index(false)` is its differential oracle.
    victims: VictimIndex,
    /// Incremental erase-count extremes for wear leveling.
    wear: WearTracker,
    /// Victim log, populated when `FtlConfig::record_gc_victims` is on.
    victim_log: Vec<GcVictim>,
    /// OOB records decoded by the most recent [`remount`](Self::remount)
    /// scan (zero before any mount) — the size of the structure an on-device
    /// implementation would stream through during power-on recovery.
    mount_scan_entries: u64,
    /// DRAM mirror of the per-LBA OOB record chains, maintained at every
    /// tagged program and pruned at every erase — `Some` only when periodic
    /// checkpointing is enabled (`FtlConfig::checkpoint_interval`), `None`
    /// otherwise so the default configuration pays nothing. This is what a
    /// checkpoint snapshots: the *inputs* of the mount algorithm, not its
    /// outputs, so the checkpointed mount path reuses the full-scan
    /// reconstruction code unchanged.
    chain_index: Option<BTreeMap<Lba, Vec<ScanPage>>>,
    /// Flat mount-scan snapshot deferred for lazy chain-index rebuilding:
    /// cloning the flat vector at mount is a single memcpy, while grouping
    /// it into `chain_index` costs tens of milliseconds on a full drive —
    /// work the first post-mount chain mutation (a host write, a GC erase
    /// or a due checkpoint) absorbs instead of the latency-critical mount.
    chain_seed: Option<Vec<(Lba, ScanPage)>>,
    /// Logical pages with chain records in each block (duplicates allowed):
    /// the pruning index an erase walks so it touches only the erased
    /// block's chains instead of the whole index. Empty when checkpointing
    /// is off.
    block_lbas: Vec<Vec<Lba>>,
    /// Minimum OOB sequence number per block, `None` after an erase —
    /// checkpointed in full fidelity because the horizon filter may drop
    /// the chain record that held the minimum. Empty when checkpointing is
    /// off.
    block_min_seq: Vec<Option<u64>>,
    /// `host_writes` watermark at the last persisted checkpoint.
    last_ckpt_writes: u64,
    /// Which device checkpoint slot holds the newest valid checkpoint;
    /// writes ping-pong to the other slot so a mid-write power cut can
    /// never destroy the fallback.
    ckpt_newest: Option<usize>,
    /// In-flight incremental GC job, `None` at quiescence (and always
    /// `None` on the blocking path). Dropped — not persisted — across a
    /// power cut; the half-migrated victim is simply re-selectable.
    gc_job: Option<GcJob>,
    /// Per-GC-entry foreground pause histogram: the growth of the device's
    /// parallel makespan across each GC entry (blocking drain or
    /// incremental pump) — the device-time stall a collocated host command
    /// would observe.
    gc_pause_hist: LatencyHistogram,
    pub stats: FtlStats,
    config: FtlConfig,
}

/// One OOB record surfaced by the mount-time scan, in the physical page it
/// was read from. [`FtlBase::remount`] returns these flat, sorted by
/// logical page and by `(stamp, seq)` — oldest version first — within each
/// page's adjacent run, so the SSD-Insider FTL can rebuild its recovery
/// queue without a second scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ScanPage {
    /// Physical page the record was read from.
    pub ppa: Ppa,
    /// Device-stamped monotone program sequence number.
    pub seq: u64,
    /// Host write time carried in the OOB tag (preserved across GC copies).
    pub stamp: SimTime,
    /// `true` when the page held the current version at program time;
    /// `false` for GC backup copies of superseded versions.
    pub live: bool,
}

/// A completed mount scan: the flat record set in canonical
/// `(logical page, stamp, seq)` order, plus the per-block programmed-page
/// watermarks and minimum OOB sequence numbers.
type MountScan = (Vec<(Lba, ScanPage)>, Vec<u32>, Vec<Option<u64>>);

/// A resumable garbage-collection job: one selected victim block plus a
/// cursor over its page offsets. [`FtlBase::gc_step`] migrates pages from
/// the cursor forward under a budget, persisting the cursor between pumps.
/// Page migration re-reads the physical page state at execution time, so a
/// job can be paused, resumed after arbitrary host writes, or dropped
/// mid-block (power cut) without special cases: unmigrated offsets are
/// re-examined fresh, migrated ones are already `Invalid`/`Free`.
///
/// The victim stays pinned while the job is paused — it is neither free nor
/// active, so the host can never program into it, and victim *selection*
/// only ever runs when no job is pending, so the selectors' indexes cannot
/// go stale under a half-collected block.
#[derive(Debug, Clone, Copy)]
struct GcJob {
    victim: Pba,
    /// Reclaim jobs count as `gc_invocations` on completion, wear-level
    /// jobs as `wear_level_swaps` — mirroring the blocking collector.
    kind: GcVictimKind,
    /// Next page offset to examine in the victim block.
    cursor: u32,
}

impl FtlBase {
    pub fn new(config: FtlConfig) -> Self {
        let device = NandDevice::new(config.nand().clone());
        let g = *config.geometry();
        let chips = g.total_chips() as usize;
        let mut free: Vec<VecDeque<Pba>> = vec![VecDeque::new(); chips];
        for raw in 0..g.total_blocks() {
            let pba = Pba::new(raw);
            free[(raw / g.blocks_per_chip()) as usize].push_back(pba);
        }
        FtlBase {
            device,
            mapping: MappingTable::new(config.logical_pages()),
            rmap: vec![None; g.total_pages() as usize],
            free,
            free_flags: vec![true; g.total_blocks() as usize],
            free_count: g.total_blocks() as usize,
            bad_flags: vec![false; g.total_blocks() as usize],
            active_flags: vec![false; g.total_blocks() as usize],
            invalid_per_block: vec![0; g.total_blocks() as usize],
            protected_per_block: vec![0; g.total_blocks() as usize],
            protected_total: 0,
            block_epoch: vec![0; g.total_blocks() as usize],
            next_epoch: 1,
            active: vec![None; chips],
            next_chip: 0,
            victims: VictimIndex::new(
                g.total_blocks() as usize,
                g.pages_per_block() as usize,
                config.gc_policy_ref(),
                g.blocks_per_chip(),
            ),
            wear: WearTracker::new(g.total_blocks()),
            victim_log: Vec::new(),
            mount_scan_entries: 0,
            chain_index: config.checkpoint_interval_pages().map(|_| BTreeMap::new()),
            chain_seed: None,
            block_lbas: if config.checkpoint_interval_pages().is_some() {
                vec![Vec::new(); g.total_blocks() as usize]
            } else {
                Vec::new()
            },
            block_min_seq: if config.checkpoint_interval_pages().is_some() {
                vec![None; g.total_blocks() as usize]
            } else {
                Vec::new()
            },
            last_ckpt_writes: 0,
            ckpt_newest: None,
            gc_job: None,
            gc_pause_hist: LatencyHistogram::new(),
            stats: FtlStats::new(),
            config,
        }
    }

    /// OOB records decoded by the most recent mount scan (zero before any
    /// power cycle).
    pub fn mount_scan_entries(&self) -> u64 {
        self.mount_scan_entries
    }

    /// Records currently held in the DRAM chain index that periodic
    /// checkpointing snapshots — zero when checkpointing is disabled. A
    /// not-yet-materialized mount seed counts: it is the same records,
    /// still in flat form.
    pub fn chain_index_entries(&self) -> u64 {
        let seeded = self.chain_seed.as_ref().map_or(0, |s| s.len() as u64);
        self.chain_index
            .as_ref()
            .map_or(0, |index| index.values().map(|c| c.len() as u64).sum())
            + seeded
    }

    pub fn config(&self) -> &FtlConfig {
        &self.config
    }

    /// Installs a deterministic NAND fault plan (failure-injection tests).
    pub fn set_fault_plan(&mut self, plan: insider_nand::FaultPlan) {
        self.device.set_fault_plan(plan);
    }

    /// Device busy time as `(serial sum, parallel makespan)`.
    pub fn nand_busy_ns(&self) -> (u64, u64) {
        (self.device.stats().busy_ns, self.device.parallel_busy_ns())
    }

    /// Per-chip and per-channel-bus busy vectors (phase-delta analyses).
    pub fn nand_busy_detail(&self) -> (Vec<u64>, Vec<u64>) {
        (
            self.device.chip_busy_ns().to_vec(),
            self.device.bus_busy_ns().to_vec(),
        )
    }

    /// Advances the device command scheduler's clock to the simulated time
    /// of the host operation about to run. Every host-facing entry point
    /// calls this first, so queued commands from earlier operations are
    /// finalized before new ones are admitted.
    pub fn set_clock(&mut self, now: SimTime) {
        self.device.set_now(now);
    }

    /// Drains the device command scheduler (see [`Ftl::sync`]).
    ///
    /// [`Ftl::sync`]: crate::Ftl::sync
    pub fn sync_device(&mut self) {
        self.device.sync();
    }

    /// Scheduler latency percentiles, `None` under the legacy makespan
    /// model (see [`Ftl::latency_snapshot`]).
    ///
    /// [`Ftl::latency_snapshot`]: crate::Ftl::latency_snapshot
    pub fn latency_snapshot(&self) -> Option<insider_nand::LatencySnapshot> {
        if self.device.sched_mode() == insider_nand::SchedMode::Legacy {
            None
        } else {
            Some(self.device.latency_snapshot())
        }
    }

    /// Latency percentiles over host-issued commands only — GC-context
    /// work excluded (see [`Ftl::host_latency_snapshot`]).
    ///
    /// [`Ftl::host_latency_snapshot`]: crate::Ftl::host_latency_snapshot
    pub fn host_latency_snapshot(&self) -> Option<insider_nand::LatencySnapshot> {
        if self.device.sched_mode() == insider_nand::SchedMode::Legacy {
            None
        } else {
            Some(self.device.host_latency_snapshot())
        }
    }

    /// Passes a payload across an internal hop: a refcount bump on the
    /// zero-copy path, a deep copy when the FTL was configured with
    /// `FtlConfig::copy_payloads(true)` (the benchmark's legacy baseline).
    fn hop(&self, data: &Bytes) -> Bytes {
        if self.config.copy_payloads_enabled() {
            Bytes::copy_from_slice(data)
        } else {
            data.clone()
        }
    }

    pub fn logical_pages(&self) -> u64 {
        self.mapping.len()
    }

    /// Number of blocks in the free pools (excluding active blocks).
    pub fn free_blocks(&self) -> usize {
        debug_assert_eq!(
            self.free_count,
            self.free.iter().map(VecDeque::len).sum::<usize>(),
            "free-count cache diverged from the pools"
        );
        self.free_count
    }

    pub fn check_lba(&self, lba: Lba) -> Result<()> {
        if self.mapping.contains(lba) {
            Ok(())
        } else {
            Err(FtlError::LbaOutOfRange {
                lba,
                logical_pages: self.mapping.len(),
            })
        }
    }

    /// One bounds check for a whole extent: every page of `[lba, lba+len)`
    /// must be inside the logical range. The reported address is the first
    /// out-of-range page, matching what a scalar decomposition would hit.
    pub fn check_extent(&self, lba: Lba, len: u32) -> Result<()> {
        let logical = self.mapping.len();
        let end = lba.index().checked_add(len as u64);
        match end {
            _ if len == 0 => Ok(()),
            Some(end) if end <= logical => Ok(()),
            _ => Err(FtlError::LbaOutOfRange {
                lba: Lba::new(lba.index().max(logical)),
                logical_pages: logical,
            }),
        }
    }

    #[cfg(test)]
    pub fn rmap_of(&self, ppa: Ppa) -> Option<Lba> {
        self.rmap[ppa.index() as usize]
    }

    /// Hands out the next programmable physical page, rotating across one
    /// active block per chip so consecutive pages land on different dies;
    /// a chip whose pool is empty is skipped until GC refills it.
    fn allocate(&mut self) -> Result<Ppa> {
        let g = *self.config.geometry();
        let chips = self.active.len();
        for attempt in 0..chips {
            let chip = (self.next_chip + attempt) % chips;
            loop {
                if let Some(pba) = self.active[chip] {
                    let block = self.device.block(pba)?;
                    if let Some(offset) = block.write_ptr() {
                        self.next_chip = (chip + 1) % chips;
                        return Ok(pba.page(&g, offset));
                    }
                    let wear = block.erase_count();
                    self.close_active(chip, pba, wear);
                }
                match self.free[chip].pop_front() {
                    Some(pba) => self.open_block(chip, pba),
                    None => break, // this chip is dry; try the next
                }
            }
        }
        Err(FtlError::NoReclaimableSpace)
    }

    /// Opens a fresh free block as `chip`'s active block.
    fn open_block(&mut self, chip: usize, pba: Pba) {
        let raw = pba.index() as usize;
        self.free_flags[raw] = false;
        self.free_count -= 1;
        self.active_flags[raw] = true;
        self.block_epoch[raw] = self.next_epoch;
        self.next_epoch += 1;
        self.active[chip] = Some(pba);
    }

    /// Closes `chip`'s full active block: it becomes a GC-victim and a
    /// wear-leveling (coldest) candidate.
    fn close_active(&mut self, chip: usize, pba: Pba, wear: u32) {
        let raw = pba.index();
        self.active[chip] = None;
        self.active_flags[raw as usize] = false;
        self.wear.close(raw, wear);
        self.refresh_victim(raw);
    }

    /// Re-files a block in the victim index after any state transition
    /// touching its candidacy or reclaimable count.
    fn refresh_victim(&mut self, raw: u32) {
        let i = raw as usize;
        if self.free_flags[i] || self.bad_flags[i] || self.active_flags[i] {
            self.victims.remove(raw);
            return;
        }
        let invalid = self.invalid_per_block[i];
        let protected = self.protected_per_block[i];
        debug_assert!(
            protected <= invalid,
            "protected pages must be invalid (block {raw}: {protected} > {invalid})"
        );
        self.victims
            .update(raw, invalid - protected, self.block_epoch[i]);
    }

    /// Records that the recovery queue began protecting `ppa`. The FTL
    /// mirrors the queue's per-block protected counts so victim scoring
    /// never has to poll it; every protection change must flow through
    /// these hooks.
    pub fn note_protected(&mut self, ppa: Ppa) {
        let raw = ppa.block(self.config.geometry()).index();
        self.protected_per_block[raw as usize] += 1;
        self.protected_total += 1;
        self.refresh_victim(raw);
    }

    /// Records that the recovery queue released `ppa`.
    pub fn note_unprotected(&mut self, ppa: Ppa) {
        let raw = ppa.block(self.config.geometry()).index();
        self.protected_per_block[raw as usize] -= 1;
        self.protected_total -= 1;
        self.refresh_victim(raw);
    }

    /// Applies the per-block deltas of a retirement batch — the entries
    /// [`RecoveryQueue::retire_before`] returned.
    pub fn note_retired(&mut self, retired: &[BackupEntry]) {
        for entry in retired {
            if let Some(old) = entry.old {
                self.note_unprotected(old);
            }
        }
    }

    /// Zeroes the protected-count mirror. Rollback drains the whole queue
    /// up front (see [`RecoveryQueue::take_all`]) and must release the
    /// mirror *before* rewinding mappings: revalidating an old version
    /// decrements its block's invalid count, which may never drop below the
    /// protected count.
    pub fn clear_protected(&mut self) {
        if self.protected_total == 0 {
            return;
        }
        self.protected_total = 0;
        for raw in 0..self.protected_per_block.len() {
            if self.protected_per_block[raw] != 0 {
                self.protected_per_block[raw] = 0;
                self.refresh_victim(raw as u32);
            }
        }
    }

    /// Total protected pages mirrored from the queue (debug reconciliation).
    pub fn protected_pages(&self) -> u64 {
        self.protected_total
    }

    /// Recorded victim-selection events (empty unless
    /// `FtlConfig::record_gc_victims` is enabled).
    pub fn gc_victims(&self) -> &[GcVictim] {
        &self.victim_log
    }

    fn log_victim(&mut self, kind: GcVictimKind, pba: Pba) {
        if self.config.gc_victim_recording() {
            self.victim_log.push(GcVictim {
                kind,
                block: pba.index(),
            });
        }
    }

    /// Reserves `n` programmable physical pages with the same die-striping
    /// rotation as [`allocate`](Self::allocate), without programming them.
    ///
    /// The device's per-block write pointer only advances when a page is
    /// actually programmed, so a batch reservation must account for pages
    /// handed out earlier in the same extent: `reserved[chip]` counts the
    /// offsets claimed ahead of the active block's write pointer. The
    /// caller programs the reservation in order (one grouped submit), which
    /// preserves NAND's in-order-programming constraint per block.
    ///
    /// A block left reservation-full is closed (its chip opens a fresh
    /// block); if the subsequent batch program aborts mid-extent, the
    /// closed block's unprogrammed tail is stranded until GC erases it —
    /// the price of grouping, only paid on injected faults.
    fn allocate_extent(&mut self, n: usize) -> Result<Vec<Ppa>> {
        let g = *self.config.geometry();
        let ppb = g.pages_per_block();
        let chips = self.active.len();
        let mut reserved = vec![0u32; chips];
        let mut out = Vec::with_capacity(n);
        'pages: for _ in 0..n {
            for attempt in 0..chips {
                let chip = (self.next_chip + attempt) % chips;
                loop {
                    if let Some(pba) = self.active[chip] {
                        let block = self.device.block(pba)?;
                        let base = block.write_ptr().unwrap_or(ppb);
                        let offset = base + reserved[chip];
                        if offset < ppb {
                            reserved[chip] += 1;
                            self.next_chip = (chip + 1) % chips;
                            out.push(pba.page(&g, offset));
                            continue 'pages;
                        }
                        let wear = block.erase_count();
                        self.close_active(chip, pba, wear);
                        reserved[chip] = 0;
                    }
                    match self.free[chip].pop_front() {
                        Some(pba) => self.open_block(chip, pba),
                        None => break, // this chip is dry; try the next
                    }
                }
            }
            return Err(FtlError::NoReclaimableSpace);
        }
        Ok(out)
    }

    /// Folds a pending mount seed into the live chain index. Deferred out
    /// of [`remount`] so the reconstruction's grouping cost lands on the
    /// first post-mount chain mutation instead of the mount itself; until
    /// then the seed *is* the chain state (flat, per-LBA runs adjacent).
    ///
    /// [`remount`]: Self::remount
    fn materialize_chains(&mut self) {
        let Some(seed) = self.chain_seed.take() else {
            return;
        };
        let g = *self.config.geometry();
        let mut block_lbas = vec![Vec::new(); g.total_blocks() as usize];
        for (lba, p) in &seed {
            block_lbas[p.ppa.block(&g).index() as usize].push(*lba);
        }
        self.block_lbas = block_lbas;
        // The seed's runs are adjacent and lba-sorted, so grouping is one
        // linear pass and the map is bulk-built from sorted keys.
        let mut groups: Vec<(Lba, Vec<ScanPage>)> = Vec::new();
        for (lba, p) in seed {
            match groups.last_mut() {
                Some((last, chain)) if *last == lba => chain.push(p),
                _ => groups.push((lba, vec![p])),
            }
        }
        self.chain_index = Some(groups.into_iter().collect());
    }

    /// Mirrors one just-programmed OOB record into the DRAM chain index —
    /// a no-op unless checkpointing is enabled. `seq` is the device
    /// sequence number the program was stamped with
    /// ([`NandDevice::last_seq`] right after a single tagged program).
    fn chain_note(&mut self, lba: Lba, ppa: Ppa, seq: u64, stamp: SimTime, live: bool) {
        if self.chain_index.is_none() {
            return;
        }
        self.materialize_chains();
        let raw = ppa.block(self.config.geometry()).index() as usize;
        self.chain_index
            .as_mut()
            .expect("checked above")
            .entry(lba)
            .or_default()
            .push(ScanPage {
                ppa,
                seq,
                stamp,
                live,
            });
        self.block_lbas[raw].push(lba);
        let slot = &mut self.block_min_seq[raw];
        *slot = Some(slot.map_or(seq, |m| m.min(seq)));
    }

    /// Drops every chain record living in just-erased block `pba` — a
    /// no-op unless checkpointing is enabled. Walks only the logical pages
    /// the pruning index recorded for the block, so the cost is
    /// proportional to the block's chain content, not the index size.
    fn chain_prune(&mut self, pba: Pba) {
        if self.chain_index.is_none() {
            return;
        }
        self.materialize_chains();
        let raw = pba.index() as usize;
        let g = *self.config.geometry();
        let lbas = std::mem::take(&mut self.block_lbas[raw]);
        let index = self.chain_index.as_mut().expect("checked above");
        for lba in lbas {
            if let Some(chain) = index.get_mut(&lba) {
                chain.retain(|p| p.ppa.block(&g) != pba);
                if chain.is_empty() {
                    index.remove(&lba);
                }
            }
        }
        self.block_min_seq[raw] = None;
    }

    /// Writes a checkpoint if one is due: called by the host write paths
    /// after `host_writes` is counted, so the interval is measured in
    /// acknowledged host pages. `anchor` is the instant the retention
    /// horizon is measured from — the caller's `now`, or the freeze time
    /// when SSD-Insider has an alarm pending (whichever is older).
    ///
    /// A NAND fault (including an injected power cut) propagates to the
    /// caller with the watermark unchanged, so the next write retries; the
    /// torn slot is the one *not* holding the newest valid checkpoint and
    /// will be erased again before reuse.
    pub fn maybe_checkpoint(&mut self, anchor: SimTime) -> Result<()> {
        let Some(interval) = self.config.checkpoint_interval_pages() else {
            return Ok(());
        };
        if self.stats.host_writes.saturating_sub(self.last_ckpt_writes) < interval {
            return Ok(());
        }
        self.write_checkpoint(anchor)
    }

    /// Serializes the chain index (horizon-filtered) plus the per-block
    /// scan baselines into the ping-pong checkpoint slot.
    fn write_checkpoint(&mut self, anchor: SimTime) -> Result<()> {
        let g = *self.config.geometry();
        let horizon = anchor.saturating_sub(self.config.window());
        let mut blocks = Vec::with_capacity(g.total_blocks() as usize);
        for raw in 0..g.total_blocks() {
            let block = self.device.block(Pba::new(raw))?;
            blocks.push(BlockMeta {
                erase_count: block.erase_count(),
                programmed: block.write_ptr().unwrap_or(g.pages_per_block()),
                min_seq: self.block_min_seq[raw as usize],
            });
        }
        self.materialize_chains();
        let index = self.chain_index.as_ref().expect("checkpointing enabled");
        let ckpt = Checkpoint {
            seq: self.device.last_seq(),
            stamp: anchor,
            horizon,
            blocks,
            records: checkpoint::filter_chains(index, horizon),
        };
        let pages = ckpt.encode(g.page_size() as usize);
        let slot = self.ckpt_newest.map_or(0, |newest| 1 - newest);
        self.device.ckpt_erase(slot)?;
        let count = pages.len() as u64;
        for page in pages {
            self.device.ckpt_append(slot, page)?;
        }
        self.ckpt_newest = Some(slot);
        self.last_ckpt_writes = self.stats.host_writes;
        self.stats.checkpoints += 1;
        self.stats.checkpoint_pages += count;
        Ok(())
    }

    /// Programs `data` for `lba` at a fresh physical page, updates both maps,
    /// and returns the superseded physical page, if any. The caller decides
    /// what happens to the old page (immediate invalidation vs. protection).
    ///
    /// `stamp` is the host write time, programmed into the page's OOB spare
    /// area together with the data so a post-crash mount can rebuild the
    /// mapping table — and the recovery queue — from flash alone.
    pub fn program_mapped(&mut self, lba: Lba, data: Bytes, stamp: SimTime) -> Result<Option<Ppa>> {
        let new = self.allocate()?;
        let data = self.hop(&data);
        self.device
            .program_tagged(new, data, OobTag::live(lba, stamp))?;
        self.chain_note(lba, new, self.device.last_seq(), stamp, true);
        self.rmap[new.index() as usize] = Some(lba);
        let old = self.mapping.set(lba, Some(new));
        Ok(old)
    }

    /// Reads the current version of `lba`, or `None` if unmapped.
    pub fn read_mapped(&mut self, lba: Lba) -> Result<Option<Bytes>> {
        match self.mapping.get(lba) {
            Some(ppa) => Ok(Some(self.device.read(ppa)?)),
            None => Ok(None),
        }
    }

    /// Batched read of `len` consecutive logical pages: one mapping-table
    /// scan gathers the mapped physical pages, a single grouped NAND submit
    /// fetches them, and the payloads are scattered back into request order
    /// (`None` for unmapped pages).
    pub fn read_extent_mapped(&mut self, lba: Lba, len: u32) -> Result<Vec<Option<Bytes>>> {
        let mut out = vec![None; len as usize];
        let mut ppas = Vec::new();
        let mut slots = Vec::new();
        for i in 0..len as u64 {
            if let Some(ppa) = self.mapping.get(lba.offset(i)) {
                ppas.push(ppa);
                slots.push(i as usize);
            }
        }
        if !ppas.is_empty() {
            let payloads = self.device.read_pages(&ppas)?;
            for (slot, data) in slots.into_iter().zip(payloads) {
                out[slot] = Some(data);
            }
        }
        Ok(out)
    }

    /// Programs a whole extent starting at `lba` — `data[i]` lands at
    /// `lba + i` — as one batch: the physical pages are reserved across the
    /// dies up front, ONE multi-page NAND submit programs them, and the
    /// forward/reverse mapping updates, superseded-page invalidations and
    /// (when `queue` is given) recovery-queue appends are applied in a
    /// single vectorized pass. Host write stats are counted here.
    ///
    /// `stamp` is the host write time, programmed into every page's OOB
    /// spare area (and stamped on any backup entries) so a post-crash mount
    /// can rebuild the DRAM state from flash alone.
    ///
    /// Payload sizes are validated up front, so an oversized buffer fails
    /// the whole extent before anything is programmed. A mid-batch NAND
    /// fault leaves the leading pages fully applied — mapped, pre-images
    /// invalidated, backup entries pushed, exactly the state the scalar
    /// loop leaves when its k-th write fails — before the error returns.
    /// The programmed prefix is the *acknowledged* part of the extent: its
    /// length is visible to the host as the `host_writes` delta.
    pub fn program_extent_mapped(
        &mut self,
        lba: Lba,
        data: &[Bytes],
        stamp: SimTime,
        queue: Option<&mut RecoveryQueue>,
    ) -> Result<()> {
        let page_size = self.config.geometry().page_size();
        for page in data {
            if page.len() > page_size as usize {
                return Err(NandError::PayloadTooLarge {
                    len: page.len(),
                    page_size,
                }
                .into());
            }
        }
        let ppas = self.allocate_extent(data.len())?;
        let batch: Vec<(Ppa, Bytes, OobTag)> = ppas
            .iter()
            .enumerate()
            .map(|(i, &ppa)| {
                (
                    ppa,
                    self.hop(&data[i]),
                    OobTag::live(lba.offset(i as u64), stamp),
                )
            })
            .collect();
        let (done, result) = self.device.program_pages_tagged(batch);
        // The device stamps the batch's programmed prefix with consecutive
        // sequence numbers ending at its current watermark.
        let first_seq = self.device.last_seq() + 1 - done as u64;
        let mut olds = Vec::with_capacity(done);
        for (i, &new) in ppas[..done].iter().enumerate() {
            let l = lba.offset(i as u64);
            self.chain_note(l, new, first_seq + i as u64, stamp, true);
            self.rmap[new.index() as usize] = Some(l);
            let old = self.mapping.set(l, Some(new));
            if let Some(old) = old {
                self.invalidate(old)?;
            }
            olds.push(old);
        }
        if let Some(queue) = queue {
            queue.push_extent(lba, &olds, stamp);
            for old in olds.iter().flatten() {
                self.note_protected(*old);
            }
        }
        self.stats.host_writes += done as u64;
        result.map_err(Into::into)
    }

    /// Unmaps `len` consecutive logical pages in one batched pass,
    /// invalidating their current versions, and returns the per-page old
    /// mappings (in extent order) for the caller's recovery bookkeeping.
    /// Host trim stats are counted here.
    pub fn unmap_extent(&mut self, lba: Lba, len: u32) -> Result<Vec<Option<Ppa>>> {
        let mut olds = Vec::with_capacity(len as usize);
        for i in 0..len as u64 {
            let old = self.mapping.set(lba.offset(i), None);
            if let Some(old) = old {
                self.invalidate(old)?;
            }
            olds.push(old);
        }
        self.stats.host_trims += len as u64;
        Ok(olds)
    }

    /// Blocking garbage collection: collects until the free pool holds the
    /// configured reserve *plus* enough whole blocks to absorb `pages`
    /// upcoming programs, so a batched extent write cannot run the
    /// allocator dry mid-submit the way a per-page GC check would have
    /// caught. Scalar writes pass `pages = 0`, keeping their historical
    /// threshold.
    ///
    /// `queue` carries the protection state for the SSD-Insider FTL:
    /// invalid pages it protects are migrated (and their backup entries
    /// redirected) rather than discarded. The conventional FTL passes
    /// `None`.
    pub fn gc_for_extent(&mut self, pages: u64, queue: Option<&mut RecoveryQueue>) -> Result<()> {
        let ppb = self.config.geometry().pages_per_block() as u64;
        let need = pages.div_ceil(ppb) as usize;
        let target = self.config.gc_reserve() as usize + need;
        if self.free_count >= target {
            // The common no-GC case returns before the timer starts, so
            // `gc_ns` stays exactly zero for workloads that never collect.
            return Ok(());
        }
        let started = Instant::now();
        let copies_before = self.stats.gc_page_copies;
        let pause_before = self.device.parallel_busy_ns();
        self.device.set_gc_context(true);
        let result = self.gc_until(target, need, copies_before, queue);
        self.device.set_gc_context(false);
        // Blocking drains occupy the single-threaded firmware: no host
        // command is serviced until the drain's last command lands.
        let horizon = self.device.gc_horizon_ns();
        self.device.stall_host_until(horizon);
        let migrated = self.stats.gc_page_copies - copies_before;
        self.stats.gc_migrations_max = self.stats.gc_migrations_max.max(migrated);
        self.stats.gc_ns += started.elapsed().as_nanos() as u64;
        let pause = self.device.parallel_busy_ns() - pause_before;
        if pause > 0 {
            self.gc_pause_hist.record(pause);
        }
        result
    }

    /// Chooses the GC path for a host write of `pages` upcoming programs:
    /// the incremental engine ([`gc_maintain`](Self::gc_maintain)) when
    /// `FtlConfig::incremental_gc` is on, the classic blocking collector
    /// ([`gc_for_extent`](Self::gc_for_extent)) otherwise. Every host write
    /// path funnels through here so the two engines are interchangeable.
    pub fn gc_before_write(&mut self, pages: u64, queue: Option<&mut RecoveryQueue>) -> Result<()> {
        if self.config.incremental_gc_enabled() {
            self.gc_maintain(pages, queue)
        } else {
            self.gc_for_extent(pages, queue)
        }
    }

    /// Incremental background GC: instead of draining the whole free-block
    /// deficit in one blocking pass, each host write pumps a bounded budget
    /// of page migrations (`FtlConfig::gc_step_pages`, scaled up by an
    /// urgency ramp as the pool sinks) through a resumable [`GcJob`].
    /// Collection starts `FtlConfig::gc_low_water_extra` blocks *early* —
    /// while the pool is still above the blocking trigger — so steady state
    /// pays many small pauses instead of rare multi-block stalls.
    ///
    /// Safety valve: if the pool still reaches the hard floor (`need + 1`
    /// blocks, the same floor the blocking collector's budget early-out
    /// honors), the engine falls back to a stop-the-world
    /// [`gc_until`](Self::gc_until) drain so the triggering write cannot
    /// starve; `FtlStats::gc_stw_fallbacks` counts how often that fired.
    pub fn gc_maintain(&mut self, pages: u64, mut queue: Option<&mut RecoveryQueue>) -> Result<()> {
        let ppb = self.config.geometry().pages_per_block() as u64;
        let need = pages.div_ceil(ppb) as usize;
        let target = self.config.gc_reserve() as usize + need;
        let low = target + self.config.gc_low_water_extra_blocks() as usize;
        if self.free_count >= low && self.gc_job.is_none() {
            // Same cold-path discipline as the blocking collector: the
            // common no-GC case returns before the timer starts.
            return Ok(());
        }
        let started = Instant::now();
        let copies_before = self.stats.gc_page_copies;
        let pause_before = self.device.parallel_busy_ns();
        self.device.set_gc_context(true);
        let mut result = self.gc_pump(target, low, queue.as_deref_mut());
        if result.is_ok() && self.free_count < need + 1 {
            // Reserve exhausted despite the urgency ramp: blocking drain —
            // which, like the classic collector, stalls the firmware for
            // the host until the drain lands. Incremental steps never do.
            self.stats.gc_stw_fallbacks += 1;
            result = self
                .gc_drain_job(queue.as_deref_mut())
                .and_then(|()| self.gc_until(target, need, copies_before, queue));
            let horizon = self.device.gc_horizon_ns();
            self.device.stall_host_until(horizon);
        }
        self.device.set_gc_context(false);
        let migrated = self.stats.gc_page_copies - copies_before;
        self.stats.gc_migrations_max = self.stats.gc_migrations_max.max(migrated);
        self.stats.gc_ns += started.elapsed().as_nanos() as u64;
        let pause = self.device.parallel_busy_ns() - pause_before;
        if pause > 0 {
            self.gc_pause_hist.record(pause);
        }
        result
    }

    /// One budgeted pump of the incremental engine. The budget scales with
    /// urgency — `gc_step_pages × (1 + deficit below the low watermark)` —
    /// so a pool sinking toward the reserve migrates ever-larger steps and
    /// the stop-the-world fallback stays cold under steady load. Order
    /// within a pump mirrors [`gc_until`](Self::gc_until) exactly (reclaim
    /// to target, wear-level once, top up), so an unbounded budget
    /// reproduces the blocking collector's victim sequence verbatim.
    fn gc_pump(
        &mut self,
        target: usize,
        low: usize,
        mut queue: Option<&mut RecoveryQueue>,
    ) -> Result<()> {
        let step = u64::from(self.config.gc_step_budget_pages());
        let urgency = 1 + low.saturating_sub(self.free_count) as u64;
        let mut budget = step.saturating_mul(urgency);
        let mut leveled = false;
        while budget > 0 {
            if self.gc_job.is_some() {
                budget = budget.saturating_sub(self.gc_step(budget, queue.as_deref_mut())?);
                continue;
            }
            if self.free_count < target {
                // Below the blocking trigger nothing reclaimable is the
                // same hard error the blocking collector reports.
                if !self.start_reclaim_job(queue.as_deref()) {
                    return Err(FtlError::NoReclaimableSpace);
                }
                continue;
            }
            if !leveled {
                leveled = true;
                if let Some(victim) = self.wear_level_candidate()? {
                    self.log_victim(GcVictimKind::WearLevel, victim);
                    self.gc_job = Some(GcJob {
                        victim,
                        kind: GcVictimKind::WearLevel,
                        cursor: 0,
                    });
                }
                continue;
            }
            // Above target but below the low watermark: proactive top-up,
            // stopping quietly when nothing is reclaimable.
            if self.free_count < low && self.start_reclaim_job(queue.as_deref()) {
                continue;
            }
            break;
        }
        Ok(())
    }

    /// Selects a reclaim victim and opens a job for it; `false` when
    /// nothing is reclaimable. The victim is logged at selection time, so
    /// the victim log stays comparable with the blocking collector's.
    fn start_reclaim_job(&mut self, queue: Option<&RecoveryQueue>) -> bool {
        debug_assert!(
            self.gc_job.is_none(),
            "victim selection must not run with a job pending"
        );
        let Some(victim) = self.select_victim(queue) else {
            return false;
        };
        self.log_victim(GcVictimKind::Reclaim, victim);
        self.gc_job = Some(GcJob {
            victim,
            kind: GcVictimKind::Reclaim,
            cursor: 0,
        });
        true
    }

    /// Pumps the pending [`GcJob`] by up to `budget` page migrations and
    /// returns how many it performed. Offsets needing no copy (free pages,
    /// unprotected invalid pages) are skipped for free. Reaching the end of
    /// the block finishes the job: the victim is erased and returned to the
    /// free pool, or retired if worn out — the job is simply dropped, like
    /// the blocking collector's retry-on-retirement.
    fn gc_step(&mut self, budget: u64, mut queue: Option<&mut RecoveryQueue>) -> Result<u64> {
        let mut job = self.gc_job.expect("gc_step requires a pending job");
        let ppb = self.config.geometry().pages_per_block();
        let mut migrated = 0u64;
        self.stats.gc_steps += 1;
        while job.cursor < ppb {
            if migrated >= budget {
                self.gc_job = Some(job);
                return Ok(migrated);
            }
            let copies = self.stats.gc_page_copies;
            if let Err(e) = self.migrate_page(job.victim, job.cursor, queue.as_deref_mut()) {
                // Per-page migration is atomic; parking the cursor on the
                // failed offset leaves it cleanly re-examinable.
                self.gc_job = Some(job);
                return Err(e);
            }
            migrated += self.stats.gc_page_copies - copies;
            job.cursor += 1;
        }
        // Every offset handled: erase, close out the job.
        self.gc_job = None;
        match self.finish_erase(job.victim) {
            Ok(()) => {
                match job.kind {
                    GcVictimKind::Reclaim => self.stats.gc_invocations += 1,
                    GcVictimKind::WearLevel => self.stats.wear_level_swaps += 1,
                }
                Ok(migrated)
            }
            // Retirement reclaims no block, but the job is done; the pump
            // selects another victim, mirroring `collect_once`'s retry.
            Err(FtlError::BadBlockRetired) => Ok(migrated),
            Err(e) => Err(e),
        }
    }

    /// Runs the pending job (if any) to completion, unbudgeted — the
    /// stop-the-world fallback and quiescence helpers use this to reach a
    /// clean `gc_job == None` state.
    pub fn gc_drain_job(&mut self, mut queue: Option<&mut RecoveryQueue>) -> Result<()> {
        while self.gc_job.is_some() {
            self.gc_step(u64::MAX, queue.as_deref_mut())?;
        }
        Ok(())
    }

    /// Whether an incremental GC job is currently paused mid-block.
    pub fn gc_job_pending(&self) -> bool {
        self.gc_job.is_some()
    }

    /// Normalized GC debt in `[0, 1]` (see [`Ftl::gc_debt`]): zero at or
    /// above the incremental low watermark, rising linearly to `1.0` as
    /// the free pool approaches exhaustion. Write pacing multiplies its
    /// refill rate by `1 − debt`.
    ///
    /// [`Ftl::gc_debt`]: crate::Ftl::gc_debt
    pub fn gc_debt(&self) -> f64 {
        let low =
            self.config.gc_reserve() as usize + self.config.gc_low_water_extra_blocks() as usize;
        if self.free_count >= low || low <= 1 {
            return 0.0;
        }
        (((low - self.free_count) as f64) / ((low - 1) as f64)).min(1.0)
    }

    /// Snapshot of the per-GC-entry foreground pause histogram (see the
    /// `gc_pause_hist` field): how much device makespan each GC entry
    /// inserted ahead of the foreground.
    pub fn gc_pause_latency(&self) -> KindLatency {
        KindLatency::from_histogram(&self.gc_pause_hist)
    }

    /// Collects until `target` free blocks are available, honoring the
    /// per-invocation migration budget: once the budget is spent, collection
    /// stops as soon as the *hard* floor — `need` blocks for the triggering
    /// write plus one so GC keeps compaction headroom — is met, and wear
    /// leveling is skipped. The budget is checked between victims, so an
    /// invocation overshoots by at most one block's worth of migrations.
    fn gc_until(
        &mut self,
        target: usize,
        need: usize,
        copies_before: u64,
        mut queue: Option<&mut RecoveryQueue>,
    ) -> Result<()> {
        let hard = need + 1;
        let budget = self.config.gc_migration_budget_pages();
        while self.free_count < target {
            let spent = self.stats.gc_page_copies - copies_before;
            if self.free_count >= hard && budget.is_some_and(|b| spent >= b) {
                return Ok(());
            }
            self.collect_once(queue.as_deref_mut())?;
        }
        let spent = self.stats.gc_page_copies - copies_before;
        if budget.is_some_and(|b| spent >= b) {
            return Ok(());
        }
        self.maybe_wear_level(queue.as_deref_mut())?;
        // A wear-level victim hitting its endurance limit consumes
        // migration pages without returning a block; top the reserve
        // back up so the caller's write cannot starve.
        while self.free_count < target {
            let spent = self.stats.gc_page_copies - copies_before;
            if self.free_count >= hard && budget.is_some_and(|b| spent >= b) {
                return Ok(());
            }
            self.collect_once(queue.as_deref_mut())?;
        }
        Ok(())
    }

    /// Static wear leveling: when the erase-count spread exceeds the
    /// configured threshold, migrate the coldest (least-erased) in-service
    /// block so it rejoins the hot rotation. Runs only right after GC, when
    /// the free pool has headroom for the migration.
    fn maybe_wear_level(&mut self, queue: Option<&mut RecoveryQueue>) -> Result<()> {
        let Some(victim) = self.wear_level_candidate()? else {
            return Ok(());
        };
        self.log_victim(GcVictimKind::WearLevel, victim);
        match self.migrate_and_erase(victim, queue) {
            Ok(()) => self.stats.wear_level_swaps += 1,
            // The coldest block hitting its endurance limit means
            // leveling has nothing left to do; never surface the
            // internal retirement marker to the host write path.
            Err(FtlError::BadBlockRetired) => {}
            Err(e) => return Err(e),
        }
        Ok(())
    }

    /// The coldest in-service block, when the erase-count spread exceeds
    /// the wear-leveling threshold; `None` when leveling is off, has no
    /// candidate, or the spread is within bounds. Shared by the blocking
    /// and incremental wear-leveling paths; debug builds reconcile the
    /// incremental trackers against the legacy scan on every call.
    fn wear_level_candidate(&mut self) -> Result<Option<Pba>> {
        let Some(threshold) = self.config.wear_leveling_threshold() else {
            return Ok(None);
        };
        #[cfg(debug_assertions)]
        assert_eq!(
            self.wear_extremes_indexed(),
            self.wear_extremes_scan()?,
            "wear trackers diverged from the legacy scan"
        );
        let extremes = if self.config.victim_index_enabled() {
            self.wear_extremes_indexed()
        } else {
            self.wear_extremes_scan()?
        };
        let Some((victim, wear, hottest)) = extremes else {
            return Ok(None);
        };
        Ok((hottest - wear > threshold).then_some(victim))
    }

    /// Wear-leveling extremes from the incremental erase-count trackers:
    /// the coldest closed in-service block `(pba, wear)` plus the hottest
    /// non-bad erase count, in O(log W) with W distinct wear values.
    fn wear_extremes_indexed(&self) -> Option<(Pba, u32, u32)> {
        let (raw, wear) = self.wear.coldest()?;
        Some((Pba::new(raw), wear, self.wear.hottest()))
    }

    /// Legacy wear scan — the differential oracle for the trackers.
    fn wear_extremes_scan(&self) -> Result<Option<(Pba, u32, u32)>> {
        let g = *self.config.geometry();
        let mut coldest: Option<(Pba, u32)> = None;
        let mut hottest = 0u32;
        for raw in 0..g.total_blocks() {
            let pba = Pba::new(raw);
            // Retired blocks never cycle again: counting their (maximal)
            // wear would hold the spread open forever and make leveling
            // thrash on every GC.
            if self.bad_flags[raw as usize] {
                continue;
            }
            let wear = self.device.block(pba)?.erase_count();
            hottest = hottest.max(wear);
            if self.active_flags[raw as usize] || self.free_flags[raw as usize] {
                continue;
            }
            if coldest.is_none_or(|(_, w)| wear < w) {
                coldest = Some((pba, wear));
            }
        }
        Ok(coldest.map(|(pba, wear)| (pba, wear, hottest)))
    }

    /// Picks the best victim under the configured policy (excluding free,
    /// active and retired-bad blocks), or `None` when nothing is
    /// reclaimable.
    ///
    /// Selection is **die-balanced**: chips are tried from driest (fewest
    /// free blocks, lowest index on ties) to wettest, and the policy picks
    /// within the first chip that has any candidate. An erased victim
    /// refills only its own chip's free pool — programs cannot cross dies
    /// — so a globally-greedy pick starves every other die: hot
    /// overwrites concentrate invalidations on the chip currently being
    /// written, global-best victims land there too, and the allocator's
    /// round-robin collapses onto one die (serializing the host stream
    /// behind that die's erases). Preferring the driest chip keeps all
    /// dies writable; on single-chip geometries the rule degenerates to
    /// the plain global policy.
    ///
    /// Dispatches to the incremental index or the legacy scan per
    /// `FtlConfig::gc_victim_index`; debug builds run *both* selectors on
    /// every call and assert they agree — the in-process differential
    /// oracle — and reconcile the chosen block's mirrored protected count
    /// against the queue's.
    fn select_victim(&mut self, queue: Option<&RecoveryQueue>) -> Option<Pba> {
        #[cfg(debug_assertions)]
        if queue.is_none_or(RecoveryQueue::tracks_blocks) {
            let indexed = self.select_victim_indexed();
            let scanned = self.select_victim_scan(queue);
            assert_eq!(indexed, scanned, "victim selectors diverged");
            if let Some(pba) = indexed {
                assert_eq!(
                    self.protected_per_block[pba.index() as usize],
                    queue.map_or(0, |q| q.protected_in_block(pba.index())),
                    "protected-count mirror diverged for block {}",
                    pba.index()
                );
            }
        }
        if self.config.victim_index_enabled() {
            self.select_victim_indexed()
        } else {
            self.select_victim_scan(queue)
        }
    }

    /// Chips ordered driest first: ascending free-pool depth, ascending
    /// chip index on ties. Both selectors share this ordering.
    fn chips_driest_first(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.free.len()).collect();
        order.sort_by_key(|&chip| (self.free[chip].len(), chip));
        order
    }

    /// Index-backed victim selection: per candidate chip, O(1) for greedy,
    /// O(pages-per-block) for the age-based policies. Single-chip
    /// geometries skip the chip ordering entirely (driest-first over one
    /// chip is the identity).
    fn select_victim_indexed(&mut self) -> Option<Pba> {
        let ppb = self.config.geometry().pages_per_block();
        let policy = self.config.gc_policy_ref();
        let pick = |victims: &mut VictimIndex, chip: usize| match policy {
            GcPolicy::Greedy => victims.best_greedy(chip),
            GcPolicy::Fifo => victims.best_fifo(chip),
            GcPolicy::CostBenefit => victims.best_cost_benefit(chip, self.next_epoch, ppb),
        };
        if self.free.len() == 1 {
            return pick(&mut self.victims, 0).map(Pba::new);
        }
        let mut order: Vec<usize> = (0..self.free.len()).collect();
        order.sort_unstable_by_key(|&chip| (self.free[chip].len(), chip));
        for chip in order {
            if let Some(raw) = pick(&mut self.victims, chip) {
                return Some(Pba::new(raw));
            }
        }
        None
    }

    /// Legacy O(total-blocks) scan — the differential oracle for the index.
    /// Protected counts come from the queue itself (not the FTL's mirror),
    /// so the two selectors have independent inputs.
    fn select_victim_scan(&self, queue: Option<&RecoveryQueue>) -> Option<Pba> {
        let g = self.config.geometry();
        let ppb = g.pages_per_block();
        let bpc = g.blocks_per_chip();
        let policy = self.config.gc_policy_ref();
        let mut best: Vec<Option<(Pba, f64)>> = vec![None; self.free.len()];
        for raw in 0..g.total_blocks() {
            let pba = Pba::new(raw);
            if self.active_flags[raw as usize]
                || self.free_flags[raw as usize]
                || self.bad_flags[raw as usize]
            {
                continue;
            }
            let invalid = self.invalid_per_block[raw as usize];
            if invalid == 0 {
                continue;
            }
            let protected = queue.map_or(0, |q| q.protected_in_block(raw));
            debug_assert!(protected <= invalid, "protected pages must be invalid");
            let reclaimable = invalid - protected;
            if reclaimable == 0 {
                continue;
            }
            let score = match policy {
                GcPolicy::Greedy => reclaimable as f64,
                // Older epoch = larger score; reclaimability only gates.
                GcPolicy::Fifo => -(self.block_epoch[raw as usize] as f64),
                GcPolicy::CostBenefit => {
                    let age = (self.next_epoch - self.block_epoch[raw as usize]) as f64;
                    let cost = (ppb - reclaimable) as f64 + 1.0;
                    reclaimable as f64 * age / cost
                }
            };
            let chip = (raw / bpc) as usize;
            if best[chip].is_none_or(|(_, s)| score > s) {
                best[chip] = Some((pba, score));
            }
        }
        self.chips_driest_first()
            .into_iter()
            .find_map(|chip| best[chip])
            .map(|(pba, _)| pba)
    }

    /// Collects one victim. Each page is migrated *atomically* (copy,
    /// remap, invalidate source, clear source rmap), so an abort at any
    /// point — allocation failure, injected fault, worn-out erase — leaves
    /// the FTL fully consistent and the victim re-collectable. A block
    /// whose erase hits its endurance limit is retired as *bad* and another
    /// victim is tried.
    fn collect_once(&mut self, mut queue: Option<&mut RecoveryQueue>) -> Result<()> {
        loop {
            let victim = self
                .select_victim(queue.as_deref())
                .ok_or(FtlError::NoReclaimableSpace)?;
            self.log_victim(GcVictimKind::Reclaim, victim);
            match self.migrate_and_erase(victim, queue.as_deref_mut()) {
                Ok(()) => {
                    self.stats.gc_invocations += 1;
                    return Ok(());
                }
                Err(FtlError::BadBlockRetired) => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Migrates every live (and protected) page out of `victim`, then
    /// erases it and returns it to the free pool. Each page is migrated
    /// *atomically* (copy, remap, invalidate source, clear source rmap), so
    /// an abort at any point — allocation failure, injected fault, worn-out
    /// erase — leaves the FTL fully consistent and the victim
    /// re-collectable. A block whose erase hits its endurance limit is
    /// retired as *bad* and reported as [`FtlError::BadBlockRetired`].
    fn migrate_and_erase(
        &mut self,
        victim: Pba,
        mut queue: Option<&mut RecoveryQueue>,
    ) -> Result<()> {
        let ppb = self.config.geometry().pages_per_block();
        for off in 0..ppb {
            self.migrate_page(victim, off, queue.as_deref_mut())?;
        }
        self.finish_erase(victim)
    }

    /// Migrates (or skips) one page offset of a GC victim — the atomic unit
    /// both the blocking collector and the incremental [`GcJob`] engine are
    /// built from. Physical page state is re-read here at execution time,
    /// so re-running an offset (resume after a pause, retry after an
    /// injected fault) is always safe: an already-migrated page has become
    /// `Invalid`-unprotected or `Free` and falls through without work.
    fn migrate_page(
        &mut self,
        victim: Pba,
        off: u32,
        mut queue: Option<&mut RecoveryQueue>,
    ) -> Result<()> {
        let g = *self.config.geometry();
        let ppa = victim.page(&g, off);
        match self.device.page_state(ppa)? {
            PageState::Valid => {
                let lba = self.rmap[ppa.index() as usize]
                    .expect("valid page must have a reverse mapping");
                // Relocation moves a buffer handle, not bytes: the
                // read clones the stored `Bytes` (refcount bump) and
                // the program hands the same backing allocation to
                // the destination page.
                let data = self.device.read(ppa)?;
                let data = self.hop(&data);
                // Carry the host write stamp across the relocation;
                // the fresh sequence number marks the copy as newer
                // than its source, which is how a post-crash mount
                // resolves a crash between this program and the
                // source invalidation (newest sequence wins).
                let stamp = self.device.oob(ppa)?.map_or(SimTime::ZERO, |o| o.stamp);
                let new = self.allocate()?;
                self.device
                    .program_tagged(new, data, OobTag::live(lba, stamp))?;
                self.chain_note(lba, new, self.device.last_seq(), stamp, true);
                self.rmap[new.index() as usize] = Some(lba);
                self.mapping.set(lba, Some(new));
                self.invalidate(ppa)?;
                self.rmap[ppa.index() as usize] = None;
                self.stats.gc_page_copies += 1;
            }
            PageState::Invalid => {
                let protected = queue.as_ref().is_some_and(|q| q.is_protected(ppa));
                if protected {
                    // Delayed deletion: the old version must survive
                    // the erase, so copy it and redirect its backup
                    // entry.
                    let lba = self.rmap[ppa.index() as usize]
                        .expect("protected page must have a reverse mapping");
                    // Same zero-copy relocation as the valid path:
                    // the protected old version's backing buffer is
                    // shared into its new home, never duplicated.
                    let data = self.device.read(ppa)?;
                    let data = self.hop(&data);
                    // A backup tag: the copy holds a superseded
                    // version, so a post-crash mount must never pick
                    // it as the current mapping — but the preserved
                    // stamp keeps it eligible for recovery-queue
                    // reconstruction.
                    let stamp = self.device.oob(ppa)?.map_or(SimTime::ZERO, |o| o.stamp);
                    let new = self.allocate()?;
                    self.device
                        .program_tagged(new, data, OobTag::backup(lba, stamp))?;
                    self.chain_note(lba, new, self.device.last_seq(), stamp, false);
                    // The copy holds an *old* version, not live data.
                    self.invalidate(new)?;
                    self.rmap[new.index() as usize] = Some(lba);
                    queue
                        .as_mut()
                        .expect("protection implies a queue")
                        .relocate(ppa, new);
                    self.note_unprotected(ppa);
                    self.note_protected(new);
                    self.stats.gc_page_copies += 1;
                    self.stats.gc_protected_copies += 1;
                }
                self.rmap[ppa.index() as usize] = None;
            }
            PageState::Free => {}
        }
        Ok(())
    }

    /// Erases a fully migrated victim back into the free pool, or retires
    /// it as *bad* when the erase hits its endurance limit (reported as
    /// [`FtlError::BadBlockRetired`]).
    fn finish_erase(&mut self, victim: Pba) -> Result<()> {
        // Sampled before the erase: counts only advance on success, so this
        // is the tracker's current bin either way.
        let wear_before = self.device.block(victim)?.erase_count();
        let raw = victim.index();
        debug_assert_eq!(
            self.protected_per_block[raw as usize], 0,
            "migration must have relocated every protected page"
        );
        match self.device.erase(victim) {
            Ok(()) => {
                self.chain_prune(victim);
                self.invalid_per_block[raw as usize] = 0;
                self.free_flags[raw as usize] = true;
                self.free_count += 1;
                self.wear.erase(raw, wear_before);
                self.refresh_victim(raw);
                let g = self.config.geometry();
                self.free[(raw / g.blocks_per_chip()) as usize].push_back(victim);
                self.stats.gc_erases += 1;
                Ok(())
            }
            Err(insider_nand::NandError::BlockWornOut(_)) => {
                // Retire the block: its pages are all invalid and
                // unprotected (migrated above), so nothing is lost —
                // the capacity just shrinks by one block.
                self.bad_flags[raw as usize] = true;
                self.invalid_per_block[raw as usize] = 0;
                self.wear.retire(raw, wear_before);
                self.refresh_victim(raw);
                self.stats.bad_blocks += 1;
                Err(FtlError::BadBlockRetired)
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Marks a superseded physical page invalid (no-op unless valid).
    pub fn invalidate(&mut self, ppa: Ppa) -> Result<()> {
        if self.device.page_state(ppa)? == PageState::Valid {
            self.device.invalidate(ppa)?;
            let raw = ppa.block(self.config.geometry()).index();
            self.invalid_per_block[raw as usize] += 1;
            self.refresh_victim(raw);
        }
        Ok(())
    }

    /// Marks an old version valid again (no-op unless invalid).
    fn revalidate(&mut self, ppa: Ppa) -> Result<()> {
        if self.device.page_state(ppa)? == PageState::Invalid {
            self.device.revalidate(ppa)?;
            let raw = ppa.block(self.config.geometry()).index();
            self.invalid_per_block[raw as usize] -= 1;
            self.refresh_victim(raw);
        }
        Ok(())
    }

    /// Restores a mapping entry to `old` (rollback step), invalidating the
    /// current version and reviving the old one.
    pub fn restore_mapping(&mut self, lba: Lba, old: Option<Ppa>) -> Result<()> {
        let current = self.mapping.set(lba, old);
        if let Some(cur) = current {
            self.invalidate(cur)?;
        }
        if let Some(ppa) = old {
            self.revalidate(ppa)?;
            debug_assert_eq!(
                self.rmap[ppa.index() as usize],
                Some(lba),
                "restored page must reverse-map to its logical page"
            );
        }
        Ok(())
    }

    /// Re-registers a protection that a post-crash mount reconstructed from
    /// the OOB scan: restores the reverse mapping of the protected old
    /// version (lost with DRAM) and bumps the per-block protected mirror.
    pub fn note_mount_protected(&mut self, ppa: Ppa, lba: Lba) {
        self.rmap[ppa.index() as usize] = Some(lba);
        self.note_protected(ppa);
    }

    /// Rebuilds the mount-scan inputs — per-LBA record chains, per-block
    /// programmed watermarks and per-block minimum sequence numbers — by
    /// the cheapest means available:
    ///
    /// 1. **Checkpoint + tail**: when checkpointing is configured and a
    ///    slot holds a valid (CRC-checked) checkpoint, only the OOB records
    ///    programmed *after* the checkpoint are scanned; blocks erased
    ///    since (erase-count mismatch) are rescanned in full and their
    ///    checkpointed records dropped. The merge is order-independent —
    ///    chains are sets keyed by unique sequence numbers — so shard
    ///    results and checkpointed records combine with a plain fold.
    /// 2. **Sharded bulk scan** (`mount_threads != 1`): the device walks
    ///    every spare area across one `std::thread::scope` shard per
    ///    contiguous block range and the results are folded in block order.
    /// 3. **Legacy serial scan** (`mount_threads == 1`, the default): one
    ///    charged `read_oob` per programmed page — byte-identical in cost
    ///    accounting to the historical mount path.
    ///
    /// Debug builds verify path 1 against a free full-device scan: merged
    /// records must all exist on flash, per-LBA mount winners and the
    /// per-block watermark/min-seq vectors must match exactly.
    #[allow(clippy::type_complexity)]
    /// Flattens per-LBA chain groups into the canonical mount order:
    /// sorted by logical page, then `(stamp, seq)` — oldest version first —
    /// within each page's run.
    fn flatten_chains(chains: BTreeMap<Lba, Vec<ScanPage>>) -> Vec<(Lba, ScanPage)> {
        let total: usize = chains.values().map(Vec::len).sum();
        let mut flat = Vec::with_capacity(total);
        for (lba, mut chain) in chains {
            chain.sort_by_key(|p| (p.stamp, p.seq));
            flat.extend(chain.into_iter().map(|p| (lba, p)));
        }
        flat
    }

    fn mount_scan(&mut self) -> Result<MountScan> {
        let g = *self.config.geometry();
        let total_blocks = g.total_blocks() as usize;
        let ppb = g.pages_per_block();
        let threads = match self.config.mount_threads_count() {
            0 => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            n => n,
        };

        // Path 1: checkpoint + OOB tail. The merge stays flat — one
        // near-sorted global sort instead of hundreds of thousands of
        // per-LBA container insertions; this is where the <50 ms remount
        // target is won or lost.
        if self.config.checkpoint_interval_pages().is_some()
            && self.config.mount_from_checkpoint_enabled()
        {
            if let Some(ckpt) = self.load_checkpoint(total_blocks) {
                let baseline: Vec<ScanBaseline> = ckpt
                    .blocks
                    .iter()
                    .map(|b| ScanBaseline {
                        erase_count: b.erase_count,
                        programmed: b.programmed,
                    })
                    .collect();
                let report = self.device.scan_oob(Some(&baseline), threads)?;
                let rescanned: Vec<bool> = report.blocks.iter().map(|b| b.rescanned).collect();
                let tail: usize = report.blocks.iter().map(|b| b.records.len()).sum();
                // Checkpointed records survive unless their block was
                // recycled — flash is the truth for rescanned blocks. The
                // filter preserves the checkpoint's canonical order.
                let mut kept = ckpt.records;
                kept.retain(|(_, p)| !rescanned[p.ppa.block(&g).index() as usize]);
                let mut programmed = vec![0u32; total_blocks];
                let mut min_seq: Vec<Option<u64>> = (0..total_blocks)
                    .map(|i| {
                        if rescanned[i] {
                            None
                        } else {
                            ckpt.blocks[i].min_seq
                        }
                    })
                    .collect();
                let mut tail_recs = Vec::with_capacity(tail);
                for (i, block) in report.blocks.iter().enumerate() {
                    programmed[i] = block.scanned_to;
                    for &(offset, rec) in &block.records {
                        let slot = &mut min_seq[i];
                        *slot = Some(slot.map_or(rec.seq, |m| m.min(rec.seq)));
                        tail_recs.push((
                            rec.lba,
                            ScanPage {
                                ppa: Pba::new(i as u32).page(&g, offset),
                                seq: rec.seq,
                                stamp: rec.stamp,
                                live: rec.live,
                            },
                        ));
                    }
                }
                // The checkpoint is already in canonical order (the encoder
                // writes filter_chains output), so only the tail needs
                // sorting; the result is a linear two-way merge instead of
                // a global re-sort of the whole record set.
                let key = |e: &(Lba, ScanPage)| (e.0.index(), e.1.stamp, e.1.seq);
                debug_assert!(kept.windows(2).all(|w| key(&w[0]) <= key(&w[1])));
                tail_recs.sort_unstable_by_key(key);
                let mut flat = Vec::with_capacity(kept.len() + tail_recs.len());
                let (mut a, mut b) = (0, 0);
                while a < kept.len() && b < tail_recs.len() {
                    if key(&kept[a]) <= key(&tail_recs[b]) {
                        flat.push(kept[a]);
                        a += 1;
                    } else {
                        flat.push(tail_recs[b]);
                        b += 1;
                    }
                }
                flat.extend_from_slice(&kept[a..]);
                flat.extend_from_slice(&tail_recs[b..]);
                #[cfg(debug_assertions)]
                self.verify_checkpoint_merge(&flat, &programmed, &min_seq);
                return Ok((flat, programmed, min_seq));
            }
        }

        // Path 3: the legacy serial scan, one charged spare-area read per
        // programmed page — the reference cost model, container and all.
        if threads == 1 {
            let mut chains: BTreeMap<Lba, Vec<ScanPage>> = BTreeMap::new();
            let mut programmed = vec![0u32; total_blocks];
            let mut min_seq: Vec<Option<u64>> = vec![None; total_blocks];
            for raw in 0..total_blocks as u32 {
                let pba = Pba::new(raw);
                let count = self.device.block(pba)?.write_ptr().unwrap_or(ppb);
                programmed[raw as usize] = count;
                for off in 0..count {
                    let ppa = pba.page(&g, off);
                    let Some(rec) = self.device.read_oob(ppa)? else {
                        continue; // untagged page: invisible to recovery
                    };
                    let slot = &mut min_seq[raw as usize];
                    *slot = Some(slot.map_or(rec.seq, |m| m.min(rec.seq)));
                    chains.entry(rec.lba).or_default().push(ScanPage {
                        ppa,
                        seq: rec.seq,
                        stamp: rec.stamp,
                        live: rec.live,
                    });
                }
            }
            return Ok((Self::flatten_chains(chains), programmed, min_seq));
        }

        // Path 2: sharded bulk scan, bulk-charged by the device; flat
        // collect plus one global sort.
        let report = self.device.scan_oob(None, threads)?;
        let total: usize = report.blocks.iter().map(|b| b.records.len()).sum();
        let mut flat = Vec::with_capacity(total);
        let mut programmed = vec![0u32; total_blocks];
        let mut min_seq: Vec<Option<u64>> = vec![None; total_blocks];
        for (i, block) in report.blocks.iter().enumerate() {
            programmed[i] = block.scanned_to;
            for &(offset, rec) in &block.records {
                let slot = &mut min_seq[i];
                *slot = Some(slot.map_or(rec.seq, |m| m.min(rec.seq)));
                flat.push((
                    rec.lba,
                    ScanPage {
                        ppa: Pba::new(i as u32).page(&g, offset),
                        seq: rec.seq,
                        stamp: rec.stamp,
                        live: rec.live,
                    },
                ));
            }
        }
        flat.sort_unstable_by_key(|(lba, p)| (lba.index(), p.stamp, p.seq));
        Ok((flat, programmed, min_seq))
    }

    /// Reads both checkpoint slots and returns the newest valid checkpoint
    /// (highest sequence watermark), or `None` when neither slot decodes —
    /// an unreadable, torn, foreign or wrong-geometry slot simply loses,
    /// which is the crash-fallback contract: a cut mid-checkpoint falls
    /// back to the surviving slot, or to a full scan.
    fn load_checkpoint(&mut self, total_blocks: usize) -> Option<Checkpoint> {
        // Order the decode attempts by each slot's *claimed* header
        // watermark so the expensive CRC-guarded decode typically runs
        // once. A torn slot can claim any sequence number, so a failed
        // decode falls through to the other slot — the claim is only an
        // ordering hint, never trusted.
        let mut slots: Vec<(usize, Vec<Bytes>, u64)> = Vec::new();
        for slot in 0..CKPT_SLOTS {
            let Ok(pages) = self.device.ckpt_read(slot) else {
                continue;
            };
            let Some(seq) = Checkpoint::peek_seq(&pages) else {
                continue;
            };
            slots.push((slot, pages, seq));
        }
        slots.sort_by_key(|&(_, _, seq)| std::cmp::Reverse(seq));
        for (slot, pages, _) in slots {
            let Some(ckpt) = Checkpoint::decode(&pages) else {
                continue;
            };
            if ckpt.blocks.len() != total_blocks {
                continue;
            }
            // Remember which slot won so the next write targets the other.
            self.ckpt_newest = Some(slot);
            return Some(ckpt);
        }
        None
    }

    /// Differential oracle for the checkpoint+tail merge, debug builds
    /// only: every merged record must exist on flash with identical
    /// fields, the per-LBA mount winner (newest live record) must be the
    /// one a full scan would pick, and the per-block programmed/min-seq
    /// vectors must match flash exactly. Full chain-set equality is *not*
    /// asserted — the horizon filter legitimately drops records that can no
    /// longer influence reconstruction.
    #[cfg(debug_assertions)]
    fn verify_checkpoint_merge(
        &self,
        merged: &[(Lba, ScanPage)],
        programmed: &[u32],
        min_seq: &[Option<u64>],
    ) {
        let mut grouped: BTreeMap<Lba, Vec<ScanPage>> = BTreeMap::new();
        for (lba, p) in merged {
            grouped.entry(*lba).or_default().push(*p);
        }
        let merged = &grouped;
        let g = *self.config.geometry();
        let ppb = g.pages_per_block();
        let mut full: BTreeMap<Lba, Vec<ScanPage>> = BTreeMap::new();
        let mut full_prog = vec![0u32; g.total_blocks() as usize];
        let mut full_min: Vec<Option<u64>> = vec![None; g.total_blocks() as usize];
        for raw in 0..g.total_blocks() {
            let block = self.device.block(Pba::new(raw)).expect("block in range");
            let count = block.write_ptr().unwrap_or(ppb);
            full_prog[raw as usize] = count;
            for off in 0..count {
                let Some(rec) = block.page(off).oob() else {
                    continue;
                };
                let slot = &mut full_min[raw as usize];
                *slot = Some(slot.map_or(rec.seq, |m| m.min(rec.seq)));
                full.entry(rec.lba).or_default().push(ScanPage {
                    ppa: Pba::new(raw).page(&g, off),
                    seq: rec.seq,
                    stamp: rec.stamp,
                    live: rec.live,
                });
            }
        }
        assert_eq!(
            programmed,
            &full_prog[..],
            "checkpoint+tail programmed watermarks diverged from flash"
        );
        assert_eq!(
            min_seq,
            &full_min[..],
            "checkpoint+tail per-block min-seq diverged from flash"
        );
        for (lba, chain) in merged {
            let flash = full
                .get(lba)
                .expect("merged chain for an lba with no flash records");
            for p in chain {
                assert!(flash.contains(p), "merged record not on flash: {lba} {p:?}");
            }
        }
        for (lba, flash_chain) in &full {
            let flash_winner = flash_chain.iter().filter(|p| p.live).max_by_key(|p| p.seq);
            let merged_winner = merged
                .get(lba)
                .and_then(|c| c.iter().filter(|p| p.live).max_by_key(|p| p.seq));
            assert_eq!(
                merged_winner.map(|p| p.ppa),
                flash_winner.map(|p| p.ppa),
                "mount winner diverged for {lba}"
            );
        }
    }

    /// Reseeds the incremental checkpoint state from a completed mount's
    /// merged chains — a no-op unless checkpointing is enabled. The chain
    /// index restarts from exactly what the mount reconstructed (the
    /// horizon filter is idempotent for forward-moving horizons, so
    /// re-filtering previously filtered chains loses nothing), and the
    /// write watermark restarts so the next checkpoint comes one full
    /// interval after the mount.
    ///
    /// The flat scan is stashed as a *seed* and the per-LBA index plus the
    /// per-block LBA lists are rebuilt lazily by [`materialize_chains`] on
    /// the first post-mount chain mutation — the index is only consulted by
    /// the *next* checkpoint write, so deferring the grouping keeps ~50 ms
    /// of container churn out of the measured mount wall-clock.
    ///
    /// [`materialize_chains`]: Self::materialize_chains
    fn rebuild_chain_state(&mut self, chains: &[(Lba, ScanPage)], min_seq: &[Option<u64>]) {
        if self.chain_index.is_none() {
            return;
        }
        self.block_min_seq = min_seq.to_vec();
        // An empty map marks checkpointing as enabled; the real contents
        // come from the seed when first needed. block_lbas is stale until
        // then, but materialize_chains overwrites it wholesale.
        self.chain_index = Some(BTreeMap::new());
        self.chain_seed = Some(chains.to_vec());
        self.last_ckpt_writes = self.stats.host_writes;
    }

    /// Power-cycles the device and rebuilds every DRAM structure from the
    /// per-page OOB records — the SSD-Insider power-on mount path.
    ///
    /// The NAND keeps page *contents*, OOB records and erase counters across
    /// a power cut; everything else — the mapping table, the reverse map,
    /// per-block valid/invalid/protected counts, the free pools, the victim
    /// index and the wear trackers — is DRAM and is reconstructed here:
    ///
    /// 1. Every programmed page's spare area is scanned (charged as reads).
    /// 2. Per logical page, the **newest live copy wins**: the live-tagged
    ///    record with the highest device sequence number is revalidated and
    ///    mapped; every superseded or backup copy stays invalid. A crash
    ///    between a GC copy and its source invalidation leaves two live
    ///    copies of one version — the copy's fresher sequence number breaks
    ///    the tie deterministically.
    /// 3. Blocks are reclassified: unprogrammed → free pool (index order),
    ///    at-or-over the endurance limit → retired bad (conservative: a
    ///    worn block may still have had one program cycle left, but mount
    ///    cannot tell and a lost block is cheaper than a lost erase), the
    ///    most recently opened partial block per chip → active, everything
    ///    else → closed in-service. Block ages (epochs) are re-ranked by
    ///    each block's minimum sequence number, preserving the relative
    ///    order the FIFO/cost-benefit GC policies depend on.
    ///
    /// Returns the scan as a flat vector sorted by logical page, each
    /// page's run ordered oldest version first by `(stamp, seq)`, so the
    /// caller can rebuild version-history state (the recovery queue)
    /// without re-reading flash. Cumulative statistics survive (they model
    /// NVRAM-backed counters, as firmware keeps wear data); the protected
    /// mirror restarts at zero and is re-filled by the caller via
    /// [`note_mount_protected`].
    ///
    /// [`note_mount_protected`]: Self::note_mount_protected
    pub fn remount(&mut self) -> Result<Vec<(Lba, ScanPage)>> {
        self.device.power_cut();
        let g = *self.config.geometry();
        let total_blocks = g.total_blocks();
        let ppb = g.pages_per_block();
        let chips = g.total_chips() as usize;
        let endurance = self.config.nand().endurance_limit();

        // Drop every DRAM structure.
        self.mapping = MappingTable::new(self.config.logical_pages());
        self.rmap = vec![None; g.total_pages() as usize];
        self.free = vec![VecDeque::new(); chips];
        self.free_flags = vec![false; total_blocks as usize];
        self.free_count = 0;
        self.bad_flags = vec![false; total_blocks as usize];
        self.active_flags = vec![false; total_blocks as usize];
        self.invalid_per_block = vec![0; total_blocks as usize];
        self.protected_per_block = vec![0; total_blocks as usize];
        self.protected_total = 0;
        self.block_epoch = vec![0; total_blocks as usize];
        self.active = vec![None; chips];
        self.next_chip = 0;
        self.victims = VictimIndex::new(
            total_blocks as usize,
            ppb as usize,
            self.config.gc_policy_ref(),
            self.config.geometry().blocks_per_chip(),
        );
        self.wear = WearTracker {
            all: BTreeMap::new(),
            closed: BTreeMap::new(),
        };
        // A half-done incremental job does not survive power loss: its
        // victim is re-scored from physical state like every other block.
        self.gc_job = None;

        // Rebuild the scan inputs — checkpoint + OOB tail when a valid
        // checkpoint exists, a full (serial or sharded) scan otherwise.
        let (chains, programmed, min_seq) = self.mount_scan()?;
        self.mount_scan_entries = chains.len() as u64;

        // Conflict resolution: the newest live copy of each logical page is
        // the mount-time mapping; everything else stays invalid. The scan
        // is sorted by logical page, so each page is one adjacent run.
        let mut winners: Vec<Ppa> = Vec::new();
        let mut i = 0;
        while i < chains.len() {
            let lba = chains[i].0;
            let mut j = i + 1;
            while j < chains.len() && chains[j].0 == lba {
                j += 1;
            }
            let run = &chains[i..j];
            i = j;
            if lba.index() >= self.mapping.len() {
                continue; // stale record beyond the exported logical range
            }
            if let Some(winner) = run
                .iter()
                .map(|(_, p)| p)
                .filter(|p| p.live)
                .max_by_key(|p| p.seq)
            {
                winners.push(winner.ppa);
                self.rmap[winner.ppa.index() as usize] = Some(lba);
                self.mapping.set(lba, Some(winner.ppa));
            }
        }
        // Revalidate in physical order — the winners arrive in logical
        // order, and hundreds of thousands of scattered page-state writes
        // are cache-miss-bound.
        winners.sort_unstable_by_key(|p| p.index());
        self.device.revalidate_many(&winners)?;

        // Reclassify every block from its physical state.
        let mut in_service: Vec<(u64, u32)> = Vec::new();
        for raw in 0..total_blocks {
            let i = raw as usize;
            let block = self.device.block(Pba::new(raw))?;
            let wear = block.erase_count();
            let valid = block.valid_pages();
            self.invalid_per_block[i] = programmed[i] - valid;
            if wear >= endurance {
                self.bad_flags[i] = true;
                continue;
            }
            *self.wear.all.entry(wear).or_insert(0) += 1;
            if programmed[i] == 0 {
                self.free_flags[i] = true;
                self.free_count += 1;
                self.free[(raw / g.blocks_per_chip()) as usize].push_back(Pba::new(raw));
            } else {
                in_service.push((min_seq[i].unwrap_or(0), raw));
            }
        }

        // The most recently opened partial block of each chip resumes as its
        // active block; any other partial block is closed, its unprogrammed
        // tail stranded until GC erases it (same as an aborted extent).
        let mut pick: Vec<Option<(u64, u32)>> = vec![None; chips];
        for &(seq, raw) in &in_service {
            if programmed[raw as usize] < ppb {
                let chip = (raw / g.blocks_per_chip()) as usize;
                if pick[chip].is_none_or(|(s, _)| seq > s) {
                    pick[chip] = Some((seq, raw));
                }
            }
        }
        for (chip, choice) in pick.iter().enumerate() {
            if let Some((_, raw)) = *choice {
                self.active[chip] = Some(Pba::new(raw));
                self.active_flags[raw as usize] = true;
            }
        }

        // Re-rank block ages by first-program order and rebuild the victim
        // index and the closed-block wear set.
        in_service.sort_unstable();
        for (rank, &(_, raw)) in in_service.iter().enumerate() {
            self.block_epoch[raw as usize] = rank as u64 + 1;
        }
        self.next_epoch = in_service.len() as u64 + 1;
        for &(_, raw) in &in_service {
            if !self.active_flags[raw as usize] {
                let wear = self.device.block(Pba::new(raw))?.erase_count();
                self.wear.close(raw, wear);
            }
            self.refresh_victim(raw);
        }
        self.rebuild_chain_state(&chains, &min_seq);
        self.stats.mounts += 1;
        Ok(chains)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insider_nand::Geometry;

    fn base() -> FtlBase {
        // 16 blocks x 16 pages, ~1 MiB; 2-block reserve.
        FtlBase::new(FtlConfig::new(Geometry::tiny()))
    }

    #[test]
    fn allocation_is_sequential_within_block() {
        let mut b = base();
        let p0 = b.allocate().unwrap();
        b.device.program(p0, Bytes::from_static(b"a")).unwrap();
        let p1 = b.allocate().unwrap();
        assert_eq!(p1.index(), p0.index() + 1);
    }

    #[test]
    fn allocation_skips_to_new_block_when_full() {
        let mut b = base();
        for i in 0..16 {
            let p = b.allocate().unwrap();
            assert_eq!(p.index(), i);
            b.device.program(p, Bytes::from_static(b"x")).unwrap();
        }
        let p = b.allocate().unwrap();
        assert_eq!(p.index(), 16); // first page of next free block
    }

    #[test]
    fn program_mapped_tracks_both_maps() {
        let mut b = base();
        let lba = Lba::new(3);
        let old = b
            .program_mapped(lba, Bytes::from_static(b"v1"), SimTime::ZERO)
            .unwrap();
        assert_eq!(old, None);
        let ppa = b.mapping.get(lba).unwrap();
        assert_eq!(b.rmap_of(ppa), Some(lba));
        let old = b
            .program_mapped(lba, Bytes::from_static(b"v2"), SimTime::ZERO)
            .unwrap();
        assert_eq!(old, Some(ppa));
    }

    #[test]
    fn gc_reclaims_invalid_pages() {
        let mut b = base();
        // Overwrite one logical page enough times to exhaust the free pool.
        let lba = Lba::new(0);
        for i in 0..(15 * 16 + 8) {
            if let Some(old) = b
                .program_mapped(
                    lba,
                    Bytes::copy_from_slice(format!("{i}").as_bytes()),
                    SimTime::ZERO,
                )
                .unwrap()
            {
                b.invalidate(old).unwrap();
            }
            b.gc_for_extent(0, None).unwrap();
        }
        assert!(b.stats.gc_invocations > 0);
        assert!(b.free_blocks() >= 2);
        // The single live page still reads back the latest value.
        let data = b.read_mapped(lba).unwrap().unwrap();
        assert_eq!(data.as_ref(), format!("{}", 15 * 16 + 8 - 1).as_bytes());
    }

    #[test]
    fn gc_migrates_valid_pages() {
        let mut b = base();
        // Interleave one cold (never overwritten) page into every block of
        // hot overwrites, so each GC victim holds live data to migrate.
        for i in 0..(16 * 16) {
            b.gc_for_extent(0, None).unwrap();
            let (lba, data) = if i % 16 == 0 {
                (Lba::new(100 + i / 16), Bytes::from_static(b"cold"))
            } else {
                (Lba::new(0), Bytes::from_static(b"hot"))
            };
            if let Some(old) = b.program_mapped(lba, data, SimTime::ZERO).unwrap() {
                b.invalidate(old).unwrap();
            }
        }
        assert!(b.stats.gc_page_copies > 0);
        for k in 0..16u64 {
            assert_eq!(
                b.read_mapped(Lba::new(100 + k)).unwrap().unwrap().as_ref(),
                b"cold",
                "cold page {k} must survive GC"
            );
        }
    }

    #[test]
    fn extent_allocation_matches_scalar_striping() {
        // The reservation path must hand out exactly the PPAs the scalar
        // allocate-program loop would, in the same die-striped order.
        let mut scalar = base();
        let mut expected = Vec::new();
        for _ in 0..20 {
            let p = scalar.allocate().unwrap();
            scalar.device.program(p, Bytes::from_static(b"s")).unwrap();
            expected.push(p);
        }
        let mut batched = base();
        let payloads = vec![Bytes::from_static(b"s"); 20];
        batched
            .program_extent_mapped(Lba::new(0), &payloads, SimTime::ZERO, None)
            .unwrap();
        let got: Vec<Ppa> = (0..20)
            .map(|i| batched.mapping.get(Lba::new(i)).unwrap())
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn extent_program_and_read_round_trip() {
        let mut b = base();
        let payloads: Vec<Bytes> = (0..5)
            .map(|i| Bytes::copy_from_slice(format!("p{i}").as_bytes()))
            .collect();
        b.program_extent_mapped(Lba::new(10), &payloads, SimTime::ZERO, None)
            .unwrap();
        assert_eq!(b.stats.host_writes, 5);
        let out = b.read_extent_mapped(Lba::new(9), 7).unwrap();
        assert_eq!(out[0], None, "lba 9 never written");
        assert_eq!(out[6], None, "lba 15 never written");
        for (i, payload) in payloads.iter().enumerate() {
            assert_eq!(out[i + 1].as_ref(), Some(payload));
        }
    }

    #[test]
    fn extent_overwrite_returns_pre_images_to_queue() {
        let mut b = base();
        let v1 = vec![Bytes::from_static(b"v1"); 3];
        b.program_extent_mapped(Lba::new(0), &v1, SimTime::ZERO, None)
            .unwrap();
        let olds: Vec<Ppa> = (0..3)
            .map(|i| b.mapping.get(Lba::new(i)).unwrap())
            .collect();
        let mut q = RecoveryQueue::new();
        let v2 = vec![Bytes::from_static(b"v2"); 3];
        b.program_extent_mapped(Lba::new(0), &v2, SimTime::from_secs(1), Some(&mut q))
            .unwrap();
        assert_eq!(q.len(), 3);
        for old in olds {
            assert!(q.is_protected(old), "pre-image {old} must be protected");
        }
    }

    #[test]
    fn oversized_extent_payload_fails_before_programming() {
        let mut b = base();
        let page = b.config().geometry().page_size() as usize;
        let payloads = vec![Bytes::from_static(b"ok"), Bytes::from(vec![0u8; page + 1])];
        assert!(b
            .program_extent_mapped(Lba::new(0), &payloads, SimTime::ZERO, None)
            .is_err());
        assert_eq!(
            b.device.stats().programs,
            0,
            "whole extent validated up front"
        );
        assert_eq!(b.mapping.get(Lba::new(0)), None);
    }

    #[test]
    fn unmap_extent_invalidates_and_reports() {
        let mut b = base();
        b.program_extent_mapped(
            Lba::new(0),
            &vec![Bytes::from_static(b"x"); 2],
            SimTime::ZERO,
            None,
        )
        .unwrap();
        let olds = b.unmap_extent(Lba::new(0), 4).unwrap();
        assert_eq!(olds.len(), 4);
        assert!(olds[0].is_some() && olds[1].is_some());
        assert_eq!(olds[2], None);
        assert_eq!(b.stats.host_trims, 4);
        assert_eq!(
            b.read_extent_mapped(Lba::new(0), 2).unwrap(),
            vec![None, None]
        );
    }

    #[test]
    fn check_extent_bounds() {
        let b = base();
        let max = b.logical_pages();
        assert!(b.check_extent(Lba::new(0), max as u32).is_ok());
        assert!(
            b.check_extent(Lba::new(max), 0).is_ok(),
            "empty extent is a no-op"
        );
        assert!(matches!(
            b.check_extent(Lba::new(max - 2), 4),
            Err(FtlError::LbaOutOfRange { lba, .. }) if lba == Lba::new(max)
        ));
        assert!(matches!(
            b.check_extent(Lba::new(u64::MAX), 2),
            Err(FtlError::LbaOutOfRange { .. })
        ));
    }

    #[test]
    fn check_lba_bounds() {
        let b = base();
        assert!(b.check_lba(Lba::new(0)).is_ok());
        let max = b.logical_pages();
        assert!(matches!(
            b.check_lba(Lba::new(max)),
            Err(FtlError::LbaOutOfRange { .. })
        ));
    }

    /// Mixed hot/cold churn that forces GC with live pages on every victim.
    fn churn(b: &mut FtlBase, rounds: u64) {
        for i in 0..rounds {
            b.gc_for_extent(0, None).unwrap();
            let (lba, data) = if i % 16 == 0 {
                (Lba::new(100 + i / 16), Bytes::from_static(b"cold"))
            } else {
                (Lba::new(0), Bytes::from_static(b"hot"))
            };
            if let Some(old) = b.program_mapped(lba, data, SimTime::ZERO).unwrap() {
                b.invalidate(old).unwrap();
            }
        }
    }

    #[test]
    fn gc_timer_accumulates_only_when_collecting() {
        let mut b = base();
        b.program_mapped(Lba::new(0), Bytes::from_static(b"x"), SimTime::ZERO)
            .unwrap();
        b.gc_for_extent(0, None).unwrap();
        assert_eq!(b.stats.gc_ns, 0, "no collection, no timing noise");
        churn(&mut b, 16 * 16 * 2);
        assert!(b.stats.gc_invocations > 0);
        assert!(b.stats.gc_ns > 0, "collections must be timed");
        assert!(b.stats.gc_migrations_max > 0);
    }

    #[test]
    fn migration_budget_bounds_per_invocation_copies() {
        let budget = 4u64;
        let mut b = FtlBase::new(FtlConfig::new(Geometry::tiny()).gc_migration_budget(budget));
        churn(&mut b, 16 * 16 * 4);
        assert!(b.stats.gc_invocations > 0);
        assert!(b.stats.gc_page_copies > 0, "victims must carry live pages");
        // The cap is checked between victims, so a single invocation can
        // overshoot by at most one block's worth of pages.
        let ppb = 16u64;
        assert!(
            b.stats.gc_migrations_max <= budget + ppb,
            "max per-invocation migrations {} exceeded budget {budget} + one block",
            b.stats.gc_migrations_max
        );
    }

    #[test]
    fn unbudgeted_gc_restores_full_reserve() {
        let mut b = base();
        churn(&mut b, 16 * 16 * 2);
        b.gc_for_extent(0, None).unwrap();
        assert!(b.free_blocks() >= b.config().gc_reserve() as usize);
    }

    #[test]
    fn victim_log_records_reclaims_when_enabled() {
        let mut b = FtlBase::new(FtlConfig::new(Geometry::tiny()).record_gc_victims(true));
        churn(&mut b, 16 * 16 * 2);
        let log = b.gc_victims();
        assert!(!log.is_empty());
        assert!(log.iter().all(|v| v.kind == GcVictimKind::Reclaim));
        assert_eq!(log.len() as u64, b.stats.gc_invocations);
    }

    #[test]
    fn victim_log_stays_empty_by_default() {
        let mut b = base();
        churn(&mut b, 16 * 16 * 2);
        assert!(b.stats.gc_invocations > 0);
        assert!(b.gc_victims().is_empty());
    }

    #[test]
    fn legacy_scan_config_produces_identical_victims() {
        // Belt and braces on top of the debug-build in-process oracle: run
        // the same churn on an indexed and a scan-configured FTL and compare
        // the recorded victim sequences in any build profile.
        let run = |indexed: bool| {
            let mut b = FtlBase::new(
                FtlConfig::new(Geometry::tiny())
                    .gc_victim_index(indexed)
                    .record_gc_victims(true),
            );
            churn(&mut b, 16 * 16 * 3);
            (b.gc_victims().to_vec(), {
                let mut s = b.stats;
                s.gc_ns = 0;
                s
            })
        };
        let (v_indexed, s_indexed) = run(true);
        let (v_scan, s_scan) = run(false);
        assert_eq!(v_indexed, v_scan);
        assert_eq!(s_indexed, s_scan);
    }

    /// Hot/cold churn through the configured GC engine (blocking or
    /// incremental, per `gc_before_write`), with enough cold (never
    /// rewritten) pages per block that victims cost real migrations.
    /// Returns whether a pump ever left a job paused mid-block.
    fn churn_mixed(b: &mut FtlBase, rounds: u64) -> bool {
        let mut saw_pending = false;
        for i in 0..rounds {
            b.gc_before_write(0, None).unwrap();
            saw_pending |= b.gc_job_pending();
            let (lba, data) = if i.is_multiple_of(2) {
                (Lba::new(100 + i / 2 % 100), Bytes::from_static(b"cold"))
            } else {
                (Lba::new(0), Bytes::from_static(b"hot"))
            };
            if let Some(old) = b.program_mapped(lba, data, SimTime::ZERO).unwrap() {
                b.invalidate(old).unwrap();
            }
        }
        saw_pending
    }

    #[test]
    fn incremental_degenerate_config_reproduces_blocking_exactly() {
        // With the low watermark collapsed onto the blocking trigger and an
        // unbounded step budget, the incremental engine must reproduce the
        // blocking collector verbatim: same victim sequence, same stats
        // (modulo the wall-clock timer and the step counters), same
        // physical mapping.
        let run = |incremental: bool| {
            let mut cfg = FtlConfig::new(Geometry::tiny()).record_gc_victims(true);
            if incremental {
                cfg = cfg
                    .incremental_gc(true)
                    .gc_low_water_extra(0)
                    .gc_step_pages(u32::MAX);
            }
            let mut b = FtlBase::new(cfg);
            churn_mixed(&mut b, 600);
            b
        };
        let a = run(false);
        let b = run(true);
        assert_eq!(a.gc_victims(), b.gc_victims());
        let scrub = |mut s: FtlStats| {
            s.gc_ns = 0;
            s.gc_steps = 0;
            s.gc_stw_fallbacks = 0;
            s
        };
        assert_eq!(scrub(a.stats), scrub(b.stats));
        for l in 0..a.logical_pages() {
            assert_eq!(
                a.mapping.get(Lba::new(l)),
                b.mapping.get(Lba::new(l)),
                "physical mapping diverged at logical page {l}"
            );
        }
    }

    #[test]
    fn incremental_gc_pauses_jobs_mid_block_and_preserves_data() {
        let mut b = FtlBase::new(
            FtlConfig::new(Geometry::tiny())
                .incremental_gc(true)
                .gc_low_water_extra(1)
                .gc_step_pages(1),
        );
        let saw_pending = churn_mixed(&mut b, 600);
        assert!(
            saw_pending,
            "a 1-page step against multi-valid-page victims must pause mid-block"
        );
        assert!(b.stats.gc_steps > 0);
        assert!(b.stats.gc_invocations > 0);
        b.gc_drain_job(None).unwrap();
        assert!(!b.gc_job_pending());
        // Every cold page survives GC pausing and resuming around it.
        for k in 0..100u64 {
            assert_eq!(
                b.read_mapped(Lba::new(100 + k)).unwrap().unwrap().as_ref(),
                b"cold",
                "cold page {k} lost across paused GC jobs"
            );
        }
    }

    #[test]
    fn stw_fallback_fires_when_the_step_budget_cannot_keep_up() {
        let mut b = FtlBase::new(
            FtlConfig::new(Geometry::tiny())
                .incremental_gc(true)
                .gc_low_water_extra(0)
                .gc_step_pages(1),
        );
        // Eight blocks of half-valid data: victims cost 8 migrations each,
        // far beyond a 1-page step with a small urgency multiplier.
        for i in 0..128u64 {
            b.program_mapped(Lba::new(i), Bytes::from_static(b"v1"), SimTime::ZERO)
                .unwrap();
        }
        for i in (0..128u64).step_by(2) {
            let old = b
                .program_mapped(Lba::new(i), Bytes::from_static(b"v2"), SimTime::ZERO)
                .unwrap();
            b.invalidate(old.expect("page was mapped")).unwrap();
        }
        // Demand the whole remaining pool at once: the pump cannot reach
        // the hard floor within its budget, so the stop-the-world drain
        // must fire and restore the full reserve.
        let free = b.free_blocks() as u64;
        b.gc_maintain(free * 16, None).unwrap();
        assert_eq!(b.stats.gc_stw_fallbacks, 1);
        assert!(!b.gc_job_pending());
        assert!(
            b.free_blocks() as u64 >= free + 2,
            "blocking fallback must have restored reserve + need blocks"
        );
        for i in 0..128u64 {
            let want: &[u8] = if i % 2 == 0 { b"v2" } else { b"v1" };
            assert_eq!(b.read_mapped(Lba::new(i)).unwrap().unwrap().as_ref(), want);
        }
    }

    #[test]
    fn gc_debt_tracks_the_free_pool() {
        let mut b = FtlBase::new(
            FtlConfig::new(Geometry::tiny())
                .incremental_gc(true)
                .gc_low_water_extra(2),
        );
        assert_eq!(b.gc_debt(), 0.0);
        let mut last = 0.0f64;
        for i in 0..200u64 {
            b.program_mapped(Lba::new(i), Bytes::from_static(b"x"), SimTime::ZERO)
                .unwrap();
            let debt = b.gc_debt();
            assert!(
                debt >= last,
                "debt must not fall while the pool only drains"
            );
            assert!((0.0..=1.0).contains(&debt));
            last = debt;
        }
        // 200 live pages leave at most 3 whole free blocks: below the
        // low watermark of 4, so debt is strictly positive.
        assert!(last > 0.0, "drained pool must report debt");
    }

    #[test]
    fn gc_pause_histogram_records_collection_entries() {
        let mut b = base();
        assert_eq!(b.gc_pause_latency().count, 0);
        churn_mixed(&mut b, 600);
        let pause = b.gc_pause_latency();
        assert!(pause.count > 0, "GC ran, so pauses must be recorded");
        assert!(pause.max_ns > 0);
        assert!(pause.p99_ns >= pause.p50_ns);
        assert!(pause.max_ns >= pause.p99_ns);
    }

    #[test]
    fn remount_drops_a_paused_gc_job() {
        let mut b = FtlBase::new(
            FtlConfig::new(Geometry::tiny())
                .incremental_gc(true)
                .gc_low_water_extra(1)
                .gc_step_pages(1),
        );
        let mut i = 0u64;
        while !b.gc_job_pending() {
            assert!(i < 2_000, "churn never paused a job");
            b.gc_before_write(0, None).unwrap();
            let (lba, data) = if i.is_multiple_of(2) {
                (Lba::new(100 + i / 2 % 100), Bytes::from_static(b"cold"))
            } else {
                (Lba::new(0), Bytes::from_static(b"hot"))
            };
            if let Some(old) = b.program_mapped(lba, data, SimTime::ZERO).unwrap() {
                b.invalidate(old).unwrap();
            }
            i += 1;
        }
        b.remount().unwrap();
        assert!(!b.gc_job_pending(), "a job must not survive a power cut");
        // The half-collected victim is ordinary closed state after the
        // rebuild; collection proceeds from scratch.
        churn_mixed(&mut b, 64);
        b.gc_drain_job(None).unwrap();
        assert!(b.free_blocks() >= 2);
    }
}
