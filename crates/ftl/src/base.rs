//! Machinery shared by the conventional and SSD-Insider FTLs: page
//! allocation, the reverse map, and greedy garbage collection.

use crate::config::{FtlConfig, GcPolicy};
use crate::mapping::MappingTable;
use crate::recovery_queue::RecoveryQueue;
use crate::stats::FtlStats;
use crate::{FtlError, Result};
use bytes::Bytes;
use insider_nand::{Lba, NandDevice, NandError, PageState, Pba, Ppa, SimTime};
use std::collections::VecDeque;

/// Common FTL state: the device, the forward and reverse maps, the free-block
/// pool and the statistics. The two public FTLs compose this and differ only
/// in how they treat superseded pages.
#[derive(Debug)]
pub(crate) struct FtlBase {
    pub device: NandDevice,
    pub mapping: MappingTable,
    /// Reverse map PPA → LBA, standing in for the out-of-band (OOB) metadata
    /// real firmware writes next to each page. For a *protected invalid*
    /// page it names the logical page whose old version it holds.
    rmap: Vec<Option<Lba>>,
    /// Free-block pools, one per chip (die): allocation stripes pages
    /// across dies (one active block per die, round-robin), which is what
    /// lets a multi-channel/multi-way controller overlap NAND operations —
    /// the source of the paper's card's bandwidth.
    free: Vec<VecDeque<Pba>>,
    /// Mirror of `free` membership for O(1) lookups.
    free_flags: Vec<bool>,
    /// Blocks retired after hitting their endurance limit; never selected
    /// as GC victims and never returned to the free pool.
    bad_flags: Vec<bool>,
    /// Invalid-page count per block, maintained incrementally so garbage
    /// collection picks victims in O(blocks).
    invalid_per_block: Vec<u32>,
    /// Monotone counter of block openings; `block_epoch[b]` is the epoch at
    /// which block `b` last became the active block (FIFO/cost-benefit age).
    block_epoch: Vec<u64>,
    next_epoch: u64,
    /// One active (partially programmed) block per chip.
    active: Vec<Option<Pba>>,
    /// Round-robin chip cursor for page allocation.
    next_chip: usize,
    pub stats: FtlStats,
    config: FtlConfig,
}

impl FtlBase {
    pub fn new(config: FtlConfig) -> Self {
        let device = NandDevice::new(config.nand().clone());
        let g = *config.geometry();
        let chips = g.total_chips() as usize;
        let mut free: Vec<VecDeque<Pba>> = vec![VecDeque::new(); chips];
        for raw in 0..g.total_blocks() {
            let pba = Pba::new(raw);
            free[(raw / g.blocks_per_chip()) as usize].push_back(pba);
        }
        FtlBase {
            device,
            mapping: MappingTable::new(config.logical_pages()),
            rmap: vec![None; g.total_pages() as usize],
            free,
            free_flags: vec![true; g.total_blocks() as usize],
            bad_flags: vec![false; g.total_blocks() as usize],
            invalid_per_block: vec![0; g.total_blocks() as usize],
            block_epoch: vec![0; g.total_blocks() as usize],
            next_epoch: 1,
            active: vec![None; chips],
            next_chip: 0,
            stats: FtlStats::new(),
            config,
        }
    }

    pub fn config(&self) -> &FtlConfig {
        &self.config
    }

    /// Installs a deterministic NAND fault plan (failure-injection tests).
    pub fn set_fault_plan(&mut self, plan: insider_nand::FaultPlan) {
        self.device.set_fault_plan(plan);
    }

    /// Device busy time as `(serial sum, parallel makespan)`.
    pub fn nand_busy_ns(&self) -> (u64, u64) {
        (self.device.stats().busy_ns, self.device.parallel_busy_ns())
    }

    /// Per-chip and per-channel-bus busy vectors (phase-delta analyses).
    pub fn nand_busy_detail(&self) -> (Vec<u64>, Vec<u64>) {
        (
            self.device.chip_busy_ns().to_vec(),
            self.device.bus_busy_ns().to_vec(),
        )
    }

    pub fn logical_pages(&self) -> u64 {
        self.mapping.len()
    }

    /// Number of blocks in the free pools (excluding active blocks).
    pub fn free_blocks(&self) -> usize {
        self.free.iter().map(VecDeque::len).sum()
    }

    pub fn check_lba(&self, lba: Lba) -> Result<()> {
        if self.mapping.contains(lba) {
            Ok(())
        } else {
            Err(FtlError::LbaOutOfRange {
                lba,
                logical_pages: self.mapping.len(),
            })
        }
    }

    /// One bounds check for a whole extent: every page of `[lba, lba+len)`
    /// must be inside the logical range. The reported address is the first
    /// out-of-range page, matching what a scalar decomposition would hit.
    pub fn check_extent(&self, lba: Lba, len: u32) -> Result<()> {
        let logical = self.mapping.len();
        let end = lba.index().checked_add(len as u64);
        match end {
            _ if len == 0 => Ok(()),
            Some(end) if end <= logical => Ok(()),
            _ => Err(FtlError::LbaOutOfRange {
                lba: Lba::new(lba.index().max(logical)),
                logical_pages: logical,
            }),
        }
    }

    #[cfg(test)]
    pub fn rmap_of(&self, ppa: Ppa) -> Option<Lba> {
        self.rmap[ppa.index() as usize]
    }

    /// Hands out the next programmable physical page, rotating across one
    /// active block per chip so consecutive pages land on different dies;
    /// a chip whose pool is empty is skipped until GC refills it.
    fn allocate(&mut self) -> Result<Ppa> {
        let g = *self.config.geometry();
        let chips = self.active.len();
        for attempt in 0..chips {
            let chip = (self.next_chip + attempt) % chips;
            loop {
                if let Some(pba) = self.active[chip] {
                    let block = self.device.block(pba)?;
                    if let Some(offset) = block.write_ptr() {
                        self.next_chip = (chip + 1) % chips;
                        return Ok(pba.page(&g, offset));
                    }
                    self.active[chip] = None;
                }
                match self.free[chip].pop_front() {
                    Some(pba) => {
                        self.free_flags[pba.index() as usize] = false;
                        self.block_epoch[pba.index() as usize] = self.next_epoch;
                        self.next_epoch += 1;
                        self.active[chip] = Some(pba);
                    }
                    None => break, // this chip is dry; try the next
                }
            }
        }
        Err(FtlError::NoReclaimableSpace)
    }

    /// Reserves `n` programmable physical pages with the same die-striping
    /// rotation as [`allocate`](Self::allocate), without programming them.
    ///
    /// The device's per-block write pointer only advances when a page is
    /// actually programmed, so a batch reservation must account for pages
    /// handed out earlier in the same extent: `reserved[chip]` counts the
    /// offsets claimed ahead of the active block's write pointer. The
    /// caller programs the reservation in order (one grouped submit), which
    /// preserves NAND's in-order-programming constraint per block.
    ///
    /// A block left reservation-full is closed (its chip opens a fresh
    /// block); if the subsequent batch program aborts mid-extent, the
    /// closed block's unprogrammed tail is stranded until GC erases it —
    /// the price of grouping, only paid on injected faults.
    fn allocate_extent(&mut self, n: usize) -> Result<Vec<Ppa>> {
        let g = *self.config.geometry();
        let ppb = g.pages_per_block();
        let chips = self.active.len();
        let mut reserved = vec![0u32; chips];
        let mut out = Vec::with_capacity(n);
        'pages: for _ in 0..n {
            for attempt in 0..chips {
                let chip = (self.next_chip + attempt) % chips;
                loop {
                    if let Some(pba) = self.active[chip] {
                        let base = self.device.block(pba)?.write_ptr().unwrap_or(ppb);
                        let offset = base + reserved[chip];
                        if offset < ppb {
                            reserved[chip] += 1;
                            self.next_chip = (chip + 1) % chips;
                            out.push(pba.page(&g, offset));
                            continue 'pages;
                        }
                        self.active[chip] = None;
                        reserved[chip] = 0;
                    }
                    match self.free[chip].pop_front() {
                        Some(pba) => {
                            self.free_flags[pba.index() as usize] = false;
                            self.block_epoch[pba.index() as usize] = self.next_epoch;
                            self.next_epoch += 1;
                            self.active[chip] = Some(pba);
                        }
                        None => break, // this chip is dry; try the next
                    }
                }
            }
            return Err(FtlError::NoReclaimableSpace);
        }
        Ok(out)
    }

    /// Programs `data` for `lba` at a fresh physical page, updates both maps,
    /// and returns the superseded physical page, if any. The caller decides
    /// what happens to the old page (immediate invalidation vs. protection).
    pub fn program_mapped(&mut self, lba: Lba, data: Bytes) -> Result<Option<Ppa>> {
        let new = self.allocate()?;
        self.device.program(new, data)?;
        self.rmap[new.index() as usize] = Some(lba);
        let old = self.mapping.set(lba, Some(new));
        Ok(old)
    }

    /// Reads the current version of `lba`, or `None` if unmapped.
    pub fn read_mapped(&mut self, lba: Lba) -> Result<Option<Bytes>> {
        match self.mapping.get(lba) {
            Some(ppa) => Ok(Some(self.device.read(ppa)?)),
            None => Ok(None),
        }
    }

    /// Batched read of `len` consecutive logical pages: one mapping-table
    /// scan gathers the mapped physical pages, a single grouped NAND submit
    /// fetches them, and the payloads are scattered back into request order
    /// (`None` for unmapped pages).
    pub fn read_extent_mapped(&mut self, lba: Lba, len: u32) -> Result<Vec<Option<Bytes>>> {
        let mut out = vec![None; len as usize];
        let mut ppas = Vec::new();
        let mut slots = Vec::new();
        for i in 0..len as u64 {
            if let Some(ppa) = self.mapping.get(lba.offset(i)) {
                ppas.push(ppa);
                slots.push(i as usize);
            }
        }
        if !ppas.is_empty() {
            let payloads = self.device.read_pages(&ppas)?;
            for (slot, data) in slots.into_iter().zip(payloads) {
                out[slot] = Some(data);
            }
        }
        Ok(out)
    }

    /// Programs a whole extent starting at `lba` — `data[i]` lands at
    /// `lba + i` — as one batch: the physical pages are reserved across the
    /// dies up front, ONE multi-page NAND submit programs them, and the
    /// forward/reverse mapping updates, superseded-page invalidations and
    /// (when `queue` is given) recovery-queue appends are applied in a
    /// single vectorized pass. Host write stats are counted here.
    ///
    /// Payload sizes are validated up front, so an oversized buffer fails
    /// the whole extent before anything is programmed. A mid-batch NAND
    /// fault leaves the leading pages fully applied — mapped, pre-images
    /// invalidated, backup entries pushed, exactly the state the scalar
    /// loop leaves when its k-th write fails — before the error returns.
    pub fn program_extent_mapped(
        &mut self,
        lba: Lba,
        data: &[Bytes],
        queue: Option<(&mut RecoveryQueue, SimTime)>,
    ) -> Result<()> {
        let page_size = self.config.geometry().page_size();
        for page in data {
            if page.len() > page_size as usize {
                return Err(NandError::PayloadTooLarge {
                    len: page.len(),
                    page_size,
                }
                .into());
            }
        }
        let ppas = self.allocate_extent(data.len())?;
        let batch: Vec<(Ppa, Bytes)> = ppas.iter().copied().zip(data.iter().cloned()).collect();
        let (done, result) = self.device.program_pages(batch);
        let mut olds = Vec::with_capacity(done);
        for (i, &new) in ppas[..done].iter().enumerate() {
            let l = lba.offset(i as u64);
            self.rmap[new.index() as usize] = Some(l);
            let old = self.mapping.set(l, Some(new));
            if let Some(old) = old {
                self.invalidate(old)?;
            }
            olds.push(old);
        }
        if let Some((queue, stamp)) = queue {
            queue.push_extent(lba, &olds, stamp);
        }
        self.stats.host_writes += done as u64;
        result.map_err(Into::into)
    }

    /// Unmaps `len` consecutive logical pages in one batched pass,
    /// invalidating their current versions, and returns the per-page old
    /// mappings (in extent order) for the caller's recovery bookkeeping.
    /// Host trim stats are counted here.
    pub fn unmap_extent(&mut self, lba: Lba, len: u32) -> Result<Vec<Option<Ppa>>> {
        let mut olds = Vec::with_capacity(len as usize);
        for i in 0..len as u64 {
            let old = self.mapping.set(lba.offset(i), None);
            if let Some(old) = old {
                self.invalidate(old)?;
            }
            olds.push(old);
        }
        self.stats.host_trims += len as u64;
        Ok(olds)
    }

    /// Runs garbage collection until the free pool is back above the reserve.
    ///
    /// `queue` carries the protection state for the SSD-Insider FTL: invalid
    /// pages it protects are migrated (and their backup entries redirected)
    /// rather than discarded. The conventional FTL passes `None`.
    pub fn gc_if_needed(&mut self, queue: Option<&mut RecoveryQueue>) -> Result<()> {
        self.gc_for_extent(0, queue)
    }

    /// Extent-aware garbage collection: collects until the free pool holds
    /// the configured reserve *plus* enough whole blocks to absorb `pages`
    /// upcoming programs, so a batched extent write cannot run the
    /// allocator dry mid-submit the way a per-page GC check would have
    /// caught. Scalar writes go through [`gc_if_needed`](Self::gc_if_needed)
    /// (`pages = 0`), keeping their historical threshold.
    pub fn gc_for_extent(&mut self, pages: u64, mut queue: Option<&mut RecoveryQueue>) -> Result<()> {
        let ppb = self.config.geometry().pages_per_block() as u64;
        let target = self.config.gc_reserve() as usize + pages.div_ceil(ppb) as usize;
        let mut collected = false;
        while self.free_blocks() < target {
            self.collect_once(queue.as_deref_mut())?;
            collected = true;
        }
        if collected {
            self.maybe_wear_level(queue.as_deref_mut())?;
            // A wear-level victim hitting its endurance limit consumes
            // migration pages without returning a block; top the reserve
            // back up so the caller's write cannot starve.
            while self.free_blocks() < target {
                self.collect_once(queue.as_deref_mut())?;
            }
        }
        Ok(())
    }

    /// Static wear leveling: when the erase-count spread exceeds the
    /// configured threshold, migrate the coldest (least-erased) in-service
    /// block so it rejoins the hot rotation. Runs only right after GC, when
    /// the free pool has headroom for the migration.
    fn maybe_wear_level(&mut self, queue: Option<&mut RecoveryQueue>) -> Result<()> {
        let Some(threshold) = self.config.wear_leveling_threshold() else {
            return Ok(());
        };
        let g = *self.config.geometry();
        let mut coldest: Option<(Pba, u32)> = None;
        let mut hottest = 0u32;
        for raw in 0..g.total_blocks() {
            let pba = Pba::new(raw);
            // Retired blocks never cycle again: counting their (maximal)
            // wear would hold the spread open forever and make leveling
            // thrash on every GC.
            if self.bad_flags[raw as usize] {
                continue;
            }
            let wear = self.device.block(pba)?.erase_count();
            hottest = hottest.max(wear);
            if self.active.contains(&Some(pba)) || self.free_flags[raw as usize] {
                continue;
            }
            if coldest.is_none_or(|(_, w)| wear < w) {
                coldest = Some((pba, wear));
            }
        }
        if let Some((victim, wear)) = coldest {
            if hottest - wear > threshold {
                match self.migrate_and_erase(victim, queue) {
                    Ok(()) => self.stats.wear_level_swaps += 1,
                    // The coldest block hitting its endurance limit means
                    // leveling has nothing left to do; never surface the
                    // internal retirement marker to the host write path.
                    Err(FtlError::BadBlockRetired) => {}
                    Err(e) => return Err(e),
                }
            }
        }
        Ok(())
    }

    /// Picks the best victim under the configured policy (excluding free,
    /// active and retired-bad blocks), or `None` when nothing is reclaimable.
    fn select_victim(&self, queue: Option<&RecoveryQueue>) -> Option<Pba> {
        let g = self.config.geometry();
        let ppb = g.pages_per_block();
        let policy = self.config.gc_policy_ref();
        let mut best: Option<(Pba, f64)> = None;
        for raw in 0..g.total_blocks() {
            let pba = Pba::new(raw);
            if self.active.contains(&Some(pba))
                || self.free_flags[raw as usize]
                || self.bad_flags[raw as usize]
            {
                continue;
            }
            let invalid = self.invalid_per_block[raw as usize];
            if invalid == 0 {
                continue;
            }
            let protected = queue.map_or(0, |q| q.protected_in_block(raw));
            debug_assert!(protected <= invalid, "protected pages must be invalid");
            let reclaimable = invalid - protected;
            if reclaimable == 0 {
                continue;
            }
            let score = match policy {
                GcPolicy::Greedy => reclaimable as f64,
                // Older epoch = larger score; reclaimability only gates.
                GcPolicy::Fifo => -(self.block_epoch[raw as usize] as f64),
                GcPolicy::CostBenefit => {
                    let age = (self.next_epoch - self.block_epoch[raw as usize]) as f64;
                    let cost = (ppb - reclaimable) as f64 + 1.0;
                    reclaimable as f64 * age / cost
                }
            };
            if best.is_none_or(|(_, s)| score > s) {
                best = Some((pba, score));
            }
        }
        best.map(|(pba, _)| pba)
    }

    /// Collects one victim. Each page is migrated *atomically* (copy,
    /// remap, invalidate source, clear source rmap), so an abort at any
    /// point — allocation failure, injected fault, worn-out erase — leaves
    /// the FTL fully consistent and the victim re-collectable. A block
    /// whose erase hits its endurance limit is retired as *bad* and another
    /// victim is tried.
    fn collect_once(&mut self, mut queue: Option<&mut RecoveryQueue>) -> Result<()> {
        loop {
            let victim = self
                .select_victim(queue.as_deref())
                .ok_or(FtlError::NoReclaimableSpace)?;
            match self.migrate_and_erase(victim, queue.as_deref_mut()) {
                Ok(()) => {
                    self.stats.gc_invocations += 1;
                    return Ok(());
                }
                Err(FtlError::BadBlockRetired) => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Migrates every live (and protected) page out of `victim`, then
    /// erases it and returns it to the free pool. Each page is migrated
    /// *atomically* (copy, remap, invalidate source, clear source rmap), so
    /// an abort at any point — allocation failure, injected fault, worn-out
    /// erase — leaves the FTL fully consistent and the victim
    /// re-collectable. A block whose erase hits its endurance limit is
    /// retired as *bad* and reported as [`FtlError::BadBlockRetired`].
    fn migrate_and_erase(
        &mut self,
        victim: Pba,
        mut queue: Option<&mut RecoveryQueue>,
    ) -> Result<()> {
        let g = *self.config.geometry();
        let ppb = g.pages_per_block();
        {
            for off in 0..ppb {
                let ppa = victim.page(&g, off);
                match self.device.page_state(ppa)? {
                    PageState::Valid => {
                        let lba = self.rmap[ppa.index() as usize]
                            .expect("valid page must have a reverse mapping");
                        let data = self.device.read(ppa)?;
                        let new = self.allocate()?;
                        self.device.program(new, data)?;
                        self.rmap[new.index() as usize] = Some(lba);
                        self.mapping.set(lba, Some(new));
                        self.invalidate(ppa)?;
                        self.rmap[ppa.index() as usize] = None;
                        self.stats.gc_page_copies += 1;
                    }
                    PageState::Invalid => {
                        let protected = queue.as_ref().is_some_and(|q| q.is_protected(ppa));
                        if protected {
                            // Delayed deletion: the old version must survive
                            // the erase, so copy it and redirect its backup
                            // entry.
                            let lba = self.rmap[ppa.index() as usize]
                                .expect("protected page must have a reverse mapping");
                            let data = self.device.read(ppa)?;
                            let new = self.allocate()?;
                            self.device.program(new, data)?;
                            // The copy holds an *old* version, not live data.
                            self.invalidate(new)?;
                            self.rmap[new.index() as usize] = Some(lba);
                            queue
                                .as_mut()
                                .expect("protection implies a queue")
                                .relocate(ppa, new);
                            self.stats.gc_page_copies += 1;
                            self.stats.gc_protected_copies += 1;
                        }
                        self.rmap[ppa.index() as usize] = None;
                    }
                    PageState::Free => {}
                }
            }

        }
        match self.device.erase(victim) {
            Ok(()) => {
                self.invalid_per_block[victim.index() as usize] = 0;
                self.free_flags[victim.index() as usize] = true;
                let g = self.config.geometry();
                self.free[(victim.index() / g.blocks_per_chip()) as usize].push_back(victim);
                self.stats.gc_erases += 1;
                Ok(())
            }
            Err(insider_nand::NandError::BlockWornOut(_)) => {
                // Retire the block: its pages are all invalid and
                // unprotected (migrated above), so nothing is lost —
                // the capacity just shrinks by one block.
                self.bad_flags[victim.index() as usize] = true;
                self.invalid_per_block[victim.index() as usize] = 0;
                self.stats.bad_blocks += 1;
                Err(FtlError::BadBlockRetired)
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Marks a superseded physical page invalid (no-op unless valid).
    pub fn invalidate(&mut self, ppa: Ppa) -> Result<()> {
        if self.device.page_state(ppa)? == PageState::Valid {
            self.device.invalidate(ppa)?;
            let g = self.config.geometry();
            self.invalid_per_block[ppa.block(g).index() as usize] += 1;
        }
        Ok(())
    }

    /// Marks an old version valid again (no-op unless invalid).
    fn revalidate(&mut self, ppa: Ppa) -> Result<()> {
        if self.device.page_state(ppa)? == PageState::Invalid {
            self.device.revalidate(ppa)?;
            let g = self.config.geometry();
            self.invalid_per_block[ppa.block(g).index() as usize] -= 1;
        }
        Ok(())
    }

    /// Restores a mapping entry to `old` (rollback step), invalidating the
    /// current version and reviving the old one.
    pub fn restore_mapping(&mut self, lba: Lba, old: Option<Ppa>) -> Result<()> {
        let current = self.mapping.set(lba, old);
        if let Some(cur) = current {
            self.invalidate(cur)?;
        }
        if let Some(ppa) = old {
            self.revalidate(ppa)?;
            debug_assert_eq!(
                self.rmap[ppa.index() as usize],
                Some(lba),
                "restored page must reverse-map to its logical page"
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insider_nand::Geometry;

    fn base() -> FtlBase {
        // 16 blocks x 16 pages, ~1 MiB; 2-block reserve.
        FtlBase::new(FtlConfig::new(Geometry::tiny()))
    }

    #[test]
    fn allocation_is_sequential_within_block() {
        let mut b = base();
        let p0 = b.allocate().unwrap();
        b.device.program(p0, Bytes::from_static(b"a")).unwrap();
        let p1 = b.allocate().unwrap();
        assert_eq!(p1.index(), p0.index() + 1);
    }

    #[test]
    fn allocation_skips_to_new_block_when_full() {
        let mut b = base();
        for i in 0..16 {
            let p = b.allocate().unwrap();
            assert_eq!(p.index(), i);
            b.device.program(p, Bytes::from_static(b"x")).unwrap();
        }
        let p = b.allocate().unwrap();
        assert_eq!(p.index(), 16); // first page of next free block
    }

    #[test]
    fn program_mapped_tracks_both_maps() {
        let mut b = base();
        let lba = Lba::new(3);
        let old = b.program_mapped(lba, Bytes::from_static(b"v1")).unwrap();
        assert_eq!(old, None);
        let ppa = b.mapping.get(lba).unwrap();
        assert_eq!(b.rmap_of(ppa), Some(lba));
        let old = b.program_mapped(lba, Bytes::from_static(b"v2")).unwrap();
        assert_eq!(old, Some(ppa));
    }

    #[test]
    fn gc_reclaims_invalid_pages() {
        let mut b = base();
        // Overwrite one logical page enough times to exhaust the free pool.
        let lba = Lba::new(0);
        for i in 0..(15 * 16 + 8) {
            if let Some(old) = b
                .program_mapped(lba, Bytes::copy_from_slice(format!("{i}").as_bytes()))
                .unwrap()
            {
                b.invalidate(old).unwrap();
            }
            b.gc_if_needed(None).unwrap();
        }
        assert!(b.stats.gc_invocations > 0);
        assert!(b.free_blocks() >= 2);
        // The single live page still reads back the latest value.
        let data = b.read_mapped(lba).unwrap().unwrap();
        assert_eq!(data.as_ref(), format!("{}", 15 * 16 + 8 - 1).as_bytes());
    }

    #[test]
    fn gc_migrates_valid_pages() {
        let mut b = base();
        // Interleave one cold (never overwritten) page into every block of
        // hot overwrites, so each GC victim holds live data to migrate.
        for i in 0..(16 * 16) {
            b.gc_if_needed(None).unwrap();
            let (lba, data) = if i % 16 == 0 {
                (Lba::new(100 + i / 16), Bytes::from_static(b"cold"))
            } else {
                (Lba::new(0), Bytes::from_static(b"hot"))
            };
            if let Some(old) = b.program_mapped(lba, data).unwrap() {
                b.invalidate(old).unwrap();
            }
        }
        assert!(b.stats.gc_page_copies > 0);
        for k in 0..16u64 {
            assert_eq!(
                b.read_mapped(Lba::new(100 + k)).unwrap().unwrap().as_ref(),
                b"cold",
                "cold page {k} must survive GC"
            );
        }
    }

    #[test]
    fn extent_allocation_matches_scalar_striping() {
        // The reservation path must hand out exactly the PPAs the scalar
        // allocate-program loop would, in the same die-striped order.
        let mut scalar = base();
        let mut expected = Vec::new();
        for _ in 0..20 {
            let p = scalar.allocate().unwrap();
            scalar.device.program(p, Bytes::from_static(b"s")).unwrap();
            expected.push(p);
        }
        let mut batched = base();
        let payloads = vec![Bytes::from_static(b"s"); 20];
        batched.program_extent_mapped(Lba::new(0), &payloads, None).unwrap();
        let got: Vec<Ppa> = (0..20).map(|i| batched.mapping.get(Lba::new(i)).unwrap()).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn extent_program_and_read_round_trip() {
        let mut b = base();
        let payloads: Vec<Bytes> =
            (0..5).map(|i| Bytes::copy_from_slice(format!("p{i}").as_bytes())).collect();
        b.program_extent_mapped(Lba::new(10), &payloads, None).unwrap();
        assert_eq!(b.stats.host_writes, 5);
        let out = b.read_extent_mapped(Lba::new(9), 7).unwrap();
        assert_eq!(out[0], None, "lba 9 never written");
        assert_eq!(out[6], None, "lba 15 never written");
        for (i, payload) in payloads.iter().enumerate() {
            assert_eq!(out[i + 1].as_ref(), Some(payload));
        }
    }

    #[test]
    fn extent_overwrite_returns_pre_images_to_queue() {
        let mut b = base();
        let v1 = vec![Bytes::from_static(b"v1"); 3];
        b.program_extent_mapped(Lba::new(0), &v1, None).unwrap();
        let olds: Vec<Ppa> = (0..3).map(|i| b.mapping.get(Lba::new(i)).unwrap()).collect();
        let mut q = RecoveryQueue::new();
        let v2 = vec![Bytes::from_static(b"v2"); 3];
        b.program_extent_mapped(Lba::new(0), &v2, Some((&mut q, SimTime::from_secs(1))))
            .unwrap();
        assert_eq!(q.len(), 3);
        for old in olds {
            assert!(q.is_protected(old), "pre-image {old} must be protected");
        }
    }

    #[test]
    fn oversized_extent_payload_fails_before_programming() {
        let mut b = base();
        let page = b.config().geometry().page_size() as usize;
        let payloads = vec![Bytes::from_static(b"ok"), Bytes::from(vec![0u8; page + 1])];
        assert!(b.program_extent_mapped(Lba::new(0), &payloads, None).is_err());
        assert_eq!(b.device.stats().programs, 0, "whole extent validated up front");
        assert_eq!(b.mapping.get(Lba::new(0)), None);
    }

    #[test]
    fn unmap_extent_invalidates_and_reports() {
        let mut b = base();
        b.program_extent_mapped(Lba::new(0), &vec![Bytes::from_static(b"x"); 2], None)
            .unwrap();
        let olds = b.unmap_extent(Lba::new(0), 4).unwrap();
        assert_eq!(olds.len(), 4);
        assert!(olds[0].is_some() && olds[1].is_some());
        assert_eq!(olds[2], None);
        assert_eq!(b.stats.host_trims, 4);
        assert_eq!(b.read_extent_mapped(Lba::new(0), 2).unwrap(), vec![None, None]);
    }

    #[test]
    fn check_extent_bounds() {
        let b = base();
        let max = b.logical_pages();
        assert!(b.check_extent(Lba::new(0), max as u32).is_ok());
        assert!(b.check_extent(Lba::new(max), 0).is_ok(), "empty extent is a no-op");
        assert!(matches!(
            b.check_extent(Lba::new(max - 2), 4),
            Err(FtlError::LbaOutOfRange { lba, .. }) if lba == Lba::new(max)
        ));
        assert!(matches!(
            b.check_extent(Lba::new(u64::MAX), 2),
            Err(FtlError::LbaOutOfRange { .. })
        ));
    }

    #[test]
    fn check_lba_bounds() {
        let b = base();
        assert!(b.check_lba(Lba::new(0)).is_ok());
        let max = b.logical_pages();
        assert!(matches!(
            b.check_lba(Lba::new(max)),
            Err(FtlError::LbaOutOfRange { .. })
        ));
    }
}
