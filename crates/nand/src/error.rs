//! Error types for NAND operations.

use crate::{Pba, Ppa};
use std::error::Error;
use std::fmt;

/// Errors returned by [`NandDevice`](crate::NandDevice) operations.
///
/// Each variant names the physical address involved so that an FTL bug
/// (e.g. programming out of order) is immediately attributable.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NandError {
    /// The page address exceeds the device geometry.
    PpaOutOfRange(Ppa),
    /// The block address exceeds the device geometry.
    PbaOutOfRange(Pba),
    /// Attempted to program a page that is not free (NAND forbids in-place
    /// updates; the page's block must be erased first).
    ProgramNonFree(Ppa),
    /// Attempted to program a page out of the block's in-order sequence.
    ProgramOutOfOrder {
        /// Address that was requested.
        requested: Ppa,
        /// The block's next in-order programmable offset, if any.
        expected_offset: Option<u32>,
    },
    /// Attempted to read a page that has never been programmed since erase.
    ReadUnwritten(Ppa),
    /// The payload exceeds the geometry's page size.
    PayloadTooLarge {
        /// Bytes supplied.
        len: usize,
        /// Page size in bytes.
        page_size: u32,
    },
    /// The block has reached its program/erase endurance limit.
    BlockWornOut(Pba),
    /// A fault injected by a [`FaultPlan`](crate::FaultPlan).
    InjectedFault(&'static str),
    /// Power was cut (by a scheduled [`FaultPlan`](crate::FaultPlan) power
    /// cut): the triggering operation was not applied and the device stays
    /// offline until power-cycled and remounted.
    PowerLoss,
}

impl fmt::Display for NandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NandError::PpaOutOfRange(ppa) => write!(f, "page address {ppa} out of range"),
            NandError::PbaOutOfRange(pba) => write!(f, "block address {pba} out of range"),
            NandError::ProgramNonFree(ppa) => {
                write!(f, "cannot program non-free page {ppa} (erase required)")
            }
            NandError::ProgramOutOfOrder {
                requested,
                expected_offset,
            } => match expected_offset {
                Some(off) => write!(
                    f,
                    "out-of-order program at {requested}; next programmable offset is {off}"
                ),
                None => write!(f, "out-of-order program at {requested}; block is full"),
            },
            NandError::ReadUnwritten(ppa) => write!(f, "read of unwritten page {ppa}"),
            NandError::PayloadTooLarge { len, page_size } => {
                write!(f, "payload of {len} bytes exceeds page size {page_size}")
            }
            NandError::BlockWornOut(pba) => write!(f, "block {pba} exceeded endurance limit"),
            NandError::InjectedFault(what) => write!(f, "injected fault: {what}"),
            NandError::PowerLoss => {
                write!(f, "power loss: device is offline until remounted")
            }
        }
    }
}

impl Error for NandError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let msgs = [
            NandError::PpaOutOfRange(Ppa::new(9)).to_string(),
            NandError::ProgramNonFree(Ppa::new(1)).to_string(),
            NandError::ProgramOutOfOrder {
                requested: Ppa::new(5),
                expected_offset: Some(2),
            }
            .to_string(),
            NandError::ProgramOutOfOrder {
                requested: Ppa::new(5),
                expected_offset: None,
            }
            .to_string(),
            NandError::ReadUnwritten(Ppa::new(3)).to_string(),
            NandError::PayloadTooLarge {
                len: 5000,
                page_size: 4096,
            }
            .to_string(),
            NandError::BlockWornOut(Pba::new(2)).to_string(),
            NandError::InjectedFault("program").to_string(),
            NandError::PowerLoss.to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(m.chars().next().unwrap().is_lowercase() || m.starts_with("out"));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NandError>();
    }
}
