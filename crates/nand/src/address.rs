//! Typed physical addresses.
//!
//! Physical page addresses ([`Ppa`]) and physical block addresses ([`Pba`])
//! are newtypes over flat indices so that they cannot be confused with each
//! other or with logical block addresses in the layers above.

use crate::Geometry;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A physical page address: a flat index into the device's page array.
///
/// Pages are numbered block-major: page `i` lives in block `i / pages_per_block`
/// at offset `i % pages_per_block`.
///
/// # Example
///
/// ```rust
/// use insider_nand::{Geometry, Ppa};
///
/// let g = Geometry::tiny(); // 16 pages per block
/// let ppa = Ppa::new(35);
/// assert_eq!(ppa.block(&g).index(), 2);
/// assert_eq!(ppa.page_offset(&g), 3);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Ppa(u64);

impl Ppa {
    /// Creates a physical page address from a flat page index.
    pub const fn new(index: u64) -> Self {
        Ppa(index)
    }

    /// The flat page index.
    pub const fn index(self) -> u64 {
        self.0
    }

    /// The block this page belongs to under geometry `g`.
    pub fn block(self, g: &Geometry) -> Pba {
        Pba::new((self.0 / g.pages_per_block() as u64) as u32)
    }

    /// The page offset within its block under geometry `g`.
    pub fn page_offset(self, g: &Geometry) -> u32 {
        (self.0 % g.pages_per_block() as u64) as u32
    }

    /// Whether this address is within the bounds of geometry `g`.
    pub fn is_valid(self, g: &Geometry) -> bool {
        self.0 < g.total_pages()
    }
}

impl fmt::Display for Ppa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ppa:{}", self.0)
    }
}

impl From<u64> for Ppa {
    fn from(v: u64) -> Self {
        Ppa(v)
    }
}

/// A physical block address: a flat index into the device's block array.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Pba(u32);

impl Pba {
    /// Creates a physical block address from a flat block index.
    pub const fn new(index: u32) -> Self {
        Pba(index)
    }

    /// The flat block index.
    pub const fn index(self) -> u32 {
        self.0
    }

    /// The first page of this block under geometry `g`.
    pub fn first_page(self, g: &Geometry) -> Ppa {
        Ppa::new(self.0 as u64 * g.pages_per_block() as u64)
    }

    /// The page at `offset` within this block under geometry `g`.
    ///
    /// # Panics
    ///
    /// Panics if `offset >= g.pages_per_block()`.
    pub fn page(self, g: &Geometry, offset: u32) -> Ppa {
        assert!(
            offset < g.pages_per_block(),
            "page offset {offset} out of range for block with {} pages",
            g.pages_per_block()
        );
        Ppa::new(self.first_page(g).index() + offset as u64)
    }

    /// Whether this address is within the bounds of geometry `g`.
    pub fn is_valid(self, g: &Geometry) -> bool {
        self.0 < g.total_blocks()
    }

    /// The channel this block's chip hangs off, for interleaving decisions.
    pub fn channel(self, g: &Geometry) -> u32 {
        (self.0 / g.blocks_per_chip()) % g.channels()
    }
}

impl fmt::Display for Pba {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pba:{}", self.0)
    }
}

impl From<u32> for Pba {
    fn from(v: u32) -> Self {
        Pba(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ppa_decomposition_round_trips() {
        let g = Geometry::tiny();
        for raw in [0u64, 1, 15, 16, 17, 255] {
            let ppa = Ppa::new(raw);
            let block = ppa.block(&g);
            let off = ppa.page_offset(&g);
            assert_eq!(block.page(&g, off), ppa);
        }
    }

    #[test]
    fn ppa_bounds() {
        let g = Geometry::tiny();
        assert!(Ppa::new(255).is_valid(&g));
        assert!(!Ppa::new(256).is_valid(&g));
    }

    #[test]
    fn pba_bounds() {
        let g = Geometry::tiny();
        assert!(Pba::new(15).is_valid(&g));
        assert!(!Pba::new(16).is_valid(&g));
    }

    #[test]
    fn first_page_of_block() {
        let g = Geometry::tiny();
        assert_eq!(Pba::new(0).first_page(&g), Ppa::new(0));
        assert_eq!(Pba::new(3).first_page(&g), Ppa::new(48));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn page_offset_out_of_range_panics() {
        let g = Geometry::tiny();
        Pba::new(0).page(&g, 16);
    }

    #[test]
    fn channel_assignment_cycles() {
        let g = Geometry::builder()
            .channels(2)
            .chips_per_channel(1)
            .blocks_per_chip(4)
            .build();
        assert_eq!(Pba::new(0).channel(&g), 0);
        assert_eq!(Pba::new(4).channel(&g), 1);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Ppa::new(7).to_string(), "ppa:7");
        assert_eq!(Pba::new(7).to_string(), "pba:7");
    }
}
