//! # insider-nand
//!
//! A NAND flash device simulator used as the storage substrate of the
//! SSD-Insider reproduction (Baek et al., ICDCS 2018).
//!
//! The simulator models the properties of NAND flash that SSD-Insider's
//! recovery algorithm depends on:
//!
//! * **Out-of-place updates** — a programmed page cannot be reprogrammed
//!   until its whole block is erased. Attempting to do so is an error, which
//!   is exactly why an FTL on top must remap logical addresses and why old
//!   versions of data linger ("delayed deletion").
//! * **Erase-before-reuse at block granularity** — erasure wipes all pages of
//!   a block at once and is the only way to free them.
//! * **In-order programming within a block** — pages of a block must be
//!   programmed sequentially, as required by real NAND.
//! * **Asymmetric latencies** — reads are fast, programs slower, erases
//!   slowest. The device accumulates simulated busy time so experiments can
//!   reason about device-level throughput.
//! * **Wear** — per-block erase counters with a configurable endurance limit.
//!
//! # Example
//!
//! ```rust
//! use insider_nand::{Geometry, NandConfig, NandDevice};
//! use bytes::Bytes;
//!
//! # fn main() -> Result<(), insider_nand::NandError> {
//! let geometry = Geometry::builder()
//!     .channels(2)
//!     .chips_per_channel(2)
//!     .blocks_per_chip(64)
//!     .pages_per_block(32)
//!     .page_size(4096)
//!     .build();
//! let mut device = NandDevice::new(NandConfig::new(geometry));
//!
//! let ppa = insider_nand::Ppa::new(0);
//! device.program(ppa, Bytes::from_static(b"hello nand"))?;
//! let data = device.read(ppa)?;
//! assert_eq!(&data[..], b"hello nand");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod address;
mod block;
mod device;
mod error;
mod fault;
mod geometry;
mod latency;
mod oob;
mod page;
mod sched;
mod stats;
mod types;

pub use address::{Pba, Ppa};
pub use block::{Block, BlockState};
pub use device::{BlockScan, NandConfig, NandDevice, ScanBaseline, ScanReport, CKPT_SLOTS};
pub use error::NandError;
pub use fault::{FaultKind, FaultPlan};
pub use geometry::{Geometry, GeometryBuilder};
pub use latency::{KindLatency, LatencyHistogram, LatencySnapshot};
pub use oob::{OobRecord, OobTag};
pub use page::{Page, PageState};
pub use sched::{CmdRecord, CmdScheduler, SchedMode};
pub use stats::NandStats;
pub use types::{Lba, SimTime};

/// Convenience result alias for NAND operations.
pub type Result<T> = std::result::Result<T, NandError>;
