//! Erase blocks: ordered page containers with wear tracking.

use crate::page::{Page, PageState};
use serde::{Deserialize, Serialize};

/// Summary state of a block, derived from its pages and write pointer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BlockState {
    /// All pages free; nothing programmed since the last erase.
    Free,
    /// Some pages programmed, some still free — the block can accept writes.
    Open,
    /// Every page programmed; only erasure can make it writable again.
    Full,
}

/// An erase block: a fixed array of pages that must be programmed in order
/// and can only be freed all at once by an erase.
#[derive(Debug, Clone)]
pub struct Block {
    pages: Vec<Page>,
    /// Next in-order page offset to program.
    write_ptr: u32,
    erase_count: u32,
}

impl Block {
    /// Creates an erased block with `pages_per_block` pages.
    pub fn new(pages_per_block: u32) -> Self {
        Block {
            pages: vec![Page::erased(); pages_per_block as usize],
            write_ptr: 0,
            erase_count: 0,
        }
    }

    /// Number of pages in the block.
    pub fn len(&self) -> u32 {
        self.pages.len() as u32
    }

    /// Whether the block holds zero pages (never true for real geometries).
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// The page at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is out of range.
    pub fn page(&self, offset: u32) -> &Page {
        &self.pages[offset as usize]
    }

    pub(crate) fn page_mut(&mut self, offset: u32) -> &mut Page {
        &mut self.pages[offset as usize]
    }

    /// The next in-order programmable page offset, or `None` if full.
    pub fn write_ptr(&self) -> Option<u32> {
        if self.write_ptr < self.len() {
            Some(self.write_ptr)
        } else {
            None
        }
    }

    pub(crate) fn advance_write_ptr(&mut self) {
        self.write_ptr += 1;
    }

    /// How many times this block has been erased.
    pub fn erase_count(&self) -> u32 {
        self.erase_count
    }

    /// Number of pages in each state `(free, valid, invalid)`.
    pub fn page_counts(&self) -> (u32, u32, u32) {
        let mut free = 0;
        let mut valid = 0;
        let mut invalid = 0;
        for p in &self.pages {
            match p.state() {
                PageState::Free => free += 1,
                PageState::Valid => valid += 1,
                PageState::Invalid => invalid += 1,
            }
        }
        (free, valid, invalid)
    }

    /// Number of invalid (reclaimable) pages.
    pub fn invalid_pages(&self) -> u32 {
        self.page_counts().2
    }

    /// Number of valid (live) pages.
    pub fn valid_pages(&self) -> u32 {
        self.page_counts().1
    }

    /// Summary state.
    pub fn state(&self) -> BlockState {
        if self.write_ptr == 0 {
            BlockState::Free
        } else if self.write_ptr < self.len() {
            BlockState::Open
        } else {
            BlockState::Full
        }
    }

    pub(crate) fn erase(&mut self) {
        for p in &mut self.pages {
            p.erase();
        }
        self.write_ptr = 0;
        self.erase_count += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn programmed_block(n: u32, programmed: u32) -> Block {
        let mut b = Block::new(n);
        for i in 0..programmed {
            b.page_mut(i).program(Bytes::from_static(b"d"), None);
            b.advance_write_ptr();
        }
        b
    }

    #[test]
    fn fresh_block_is_free() {
        let b = Block::new(8);
        assert_eq!(b.state(), BlockState::Free);
        assert_eq!(b.write_ptr(), Some(0));
        assert_eq!(b.page_counts(), (8, 0, 0));
        assert_eq!(b.erase_count(), 0);
    }

    #[test]
    fn partially_programmed_block_is_open() {
        let b = programmed_block(8, 3);
        assert_eq!(b.state(), BlockState::Open);
        assert_eq!(b.write_ptr(), Some(3));
        assert_eq!(b.page_counts(), (5, 3, 0));
    }

    #[test]
    fn fully_programmed_block_is_full() {
        let b = programmed_block(8, 8);
        assert_eq!(b.state(), BlockState::Full);
        assert_eq!(b.write_ptr(), None);
    }

    #[test]
    fn erase_resets_and_counts_wear() {
        let mut b = programmed_block(8, 8);
        b.page_mut(2).invalidate();
        b.erase();
        assert_eq!(b.state(), BlockState::Free);
        assert_eq!(b.page_counts(), (8, 0, 0));
        assert_eq!(b.erase_count(), 1);
        b.erase();
        assert_eq!(b.erase_count(), 2);
    }

    #[test]
    fn invalid_page_accounting() {
        let mut b = programmed_block(8, 4);
        b.page_mut(0).invalidate();
        b.page_mut(1).invalidate();
        assert_eq!(b.invalid_pages(), 2);
        assert_eq!(b.valid_pages(), 2);
    }
}
