//! Log-bucketed latency histograms for scheduled NAND commands.
//!
//! The command scheduler ([`crate::CmdScheduler`]) records one sample per
//! completed command: `completion − arrival`, in nanoseconds of simulated
//! time. Samples land in a histogram with power-of-two buckets refined by
//! 16 linear sub-buckets each, so quantiles carry at most ~6 % relative
//! error while the whole structure stays a fixed ~8 KiB regardless of how
//! many billions of samples it absorbs. Quantile reads interpolate
//! linearly *within* the containing sub-bucket (samples assumed uniform
//! across it), so percentile deltas smaller than one sub-bucket — under
//! ~10 % relative — still resolve instead of collapsing onto pow2 bucket
//! edges like 507904. The estimate is clamped to the exact observed
//! maximum, so a single-sample histogram reports that sample precisely.

use serde::{Deserialize, Serialize};

/// Linear sub-buckets per power of two.
const SUB_BUCKETS: usize = 16;

/// Bucket count: values 0–15 get exact buckets, then 16 sub-buckets per
/// exponent 4..=63.
const BUCKETS: usize = 61 * SUB_BUCKETS;

fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros() as usize; // >= 4 here
    let sub = ((v >> (exp - 4)) & 0xf) as usize;
    (exp - 3) * SUB_BUCKETS + sub
}

fn bucket_floor(index: usize) -> u64 {
    if index < SUB_BUCKETS {
        return index as u64;
    }
    let exp = index / SUB_BUCKETS + 3;
    let sub = (index % SUB_BUCKETS) as u64;
    (1u64 << exp) + (sub << (exp - 4))
}

/// Exclusive upper bound of a sub-bucket (the next bucket's floor).
fn bucket_ceil(index: usize) -> u64 {
    if index + 1 >= BUCKETS {
        return u64::MAX;
    }
    bucket_floor(index + 1)
}

/// A fixed-size log-bucketed histogram of nanosecond latencies.
///
/// # Example
///
/// ```rust
/// use insider_nand::LatencyHistogram;
///
/// let mut h = LatencyHistogram::new();
/// for ns in [50_000u64, 50_000, 500_000] {
///     h.record(ns);
/// }
/// assert_eq!(h.count(), 3);
/// // Interpolated within the sub-bucket: within ~4 % of the true median.
/// assert!(h.quantile(0.50).abs_diff(50_000) < 2_048);
/// assert!(h.quantile(0.99) <= 500_000);
/// assert_eq!(h.max_ns(), 500_000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    count: u64,
    sum_ns: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, ns: u64) {
        self.counts[bucket_index(ns)] += 1;
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples, in nanoseconds (saturating).
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns
    }

    /// Largest sample, in nanoseconds (exact, not bucketed).
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Mean sample, in nanoseconds; zero when empty.
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }

    /// The latency at quantile `q` (e.g. `0.99` for p99), linearly
    /// interpolated inside the sub-bucket containing the
    /// `ceil(q × count)`-th smallest sample: the bucket's samples are
    /// assumed to spread uniformly across its width, and the rank is mapped
    /// to the midpoint of its equal slice. The estimate never exceeds the
    /// exact observed maximum. Zero when the histogram is empty.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= q <= 1.0`.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let lo = bucket_floor(i);
                let width = bucket_ceil(i) - lo;
                // The r-th of c samples sits at the midpoint of the r-th of
                // c equal slices of the bucket.
                let r = (rank - seen) as u128;
                let est = lo as u128 + (width as u128 * (2 * r - 1)) / (2 * c as u128);
                return est.min(self.max_ns as u128) as u64;
            }
            seen += c;
        }
        self.max_ns
    }

    /// Resets the histogram to empty.
    pub fn clear(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.count = 0;
        self.sum_ns = 0;
        self.max_ns = 0;
    }
}

/// Summary percentiles for one command kind, extracted from a
/// [`LatencyHistogram`]. All figures are nanoseconds of simulated time; a
/// zeroed summary means no command of this kind completed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KindLatency {
    /// Completed commands of this kind.
    pub count: u64,
    /// Median latency.
    pub p50_ns: u64,
    /// 95th-percentile latency.
    pub p95_ns: u64,
    /// 99th-percentile latency.
    pub p99_ns: u64,
    /// Worst observed latency (exact).
    pub max_ns: u64,
    /// Mean latency.
    pub mean_ns: u64,
}

impl KindLatency {
    /// Summary of a histogram's current contents.
    pub fn from_histogram(h: &LatencyHistogram) -> Self {
        KindLatency {
            count: h.count(),
            p50_ns: h.quantile(0.50),
            p95_ns: h.quantile(0.95),
            p99_ns: h.quantile(0.99),
            max_ns: h.max_ns(),
            mean_ns: h.mean_ns(),
        }
    }
}

impl std::fmt::Display for KindLatency {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} p50={}ns p95={}ns p99={}ns max={}ns",
            self.count, self.p50_ns, self.p95_ns, self.p99_ns, self.max_ns
        )
    }
}

/// Per-kind latency percentiles for every command the scheduler completed.
///
/// `total` aggregates reads, programs and erases into one distribution —
/// the "what does a command issued to this device experience" view a host
/// sees. Queued-but-unfinalized commands are not included until the
/// scheduler is flushed (see `NandDevice::sync`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencySnapshot {
    /// Page reads.
    pub read: KindLatency,
    /// Page programs.
    pub program: KindLatency,
    /// Block erases.
    pub erase: KindLatency,
    /// All commands combined.
    pub total: KindLatency,
}

impl std::fmt::Display for LatencySnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "read:    {}", self.read)?;
        writeln!(f, "program: {}", self.program)?;
        writeln!(f, "erase:   {}", self.erase)?;
        write!(f, "total:   {}", self.total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_contiguous_and_monotone() {
        let mut prev = None;
        for v in 0u64..4096 {
            let i = bucket_index(v);
            if let Some(p) = prev {
                assert!(i >= p, "bucket index regressed at {v}");
                assert!(i <= p + 1, "bucket index skipped at {v}");
            }
            assert!(bucket_floor(i) <= v, "floor above value at {v}");
            prev = Some(i);
        }
    }

    #[test]
    fn floor_is_exact_for_small_values() {
        for v in 0u64..16 {
            assert_eq!(bucket_floor(bucket_index(v)), v);
        }
    }

    #[test]
    fn floor_error_is_bounded() {
        for v in [100u64, 1_000, 50_000, 500_000, 3_000_000, u64::MAX / 2] {
            let floor = bucket_floor(bucket_index(v));
            assert!(floor <= v);
            // Lower bound is within one sub-bucket: < 1/16 relative error.
            assert!(
                (v - floor) as f64 <= v as f64 / 16.0 + 1.0,
                "error too large at {v}"
            );
        }
    }

    #[test]
    fn quantiles_are_ordered() {
        let mut h = LatencyHistogram::new();
        for i in 0..10_000u64 {
            h.record(i * 37 % 1_000_000);
        }
        let p50 = h.quantile(0.50);
        let p95 = h.quantile(0.95);
        let p99 = h.quantile(0.99);
        assert!(p50 <= p95 && p95 <= p99 && p99 <= h.max_ns());
        assert_eq!(h.count(), 10_000);
        assert!(h.mean_ns() > 0);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_ns(), 0);
        let k = KindLatency::from_histogram(&h);
        assert_eq!(k, KindLatency::default());
    }

    #[test]
    fn single_sample_dominates_every_quantile() {
        let mut h = LatencyHistogram::new();
        h.record(50_000);
        let k = KindLatency::from_histogram(&h);
        assert_eq!(k.count, 1);
        assert_eq!(k.max_ns, 50_000);
        // The interpolated estimate is clamped to the exact max, so a
        // single-sample histogram reports that sample precisely.
        assert_eq!(k.p50_ns, 50_000);
        assert_eq!(k.p50_ns, k.p99_ns);
    }

    #[test]
    fn interpolation_resolves_sub_bucket_deltas() {
        // 1000 samples uniform over [100_000, 110_000): the whole range
        // spans fewer than three 4096-wide sub-buckets, so lower-bound
        // quantiles would collapse p50 and p95 onto nearly the same edge.
        let mut h = LatencyHistogram::new();
        for i in 0..1000u64 {
            h.record(100_000 + i * 10);
        }
        let p50 = h.quantile(0.50);
        let p95 = h.quantile(0.95);
        assert!(p50.abs_diff(105_000) < 1_000, "p50 {p50} off true median");
        assert!(p95.abs_diff(109_500) < 1_000, "p95 {p95} off true value");
        assert!(p95 > p50 + 3_000, "sub-bucket delta must resolve");
        assert!(p95 <= h.max_ns());
    }

    #[test]
    fn clear_resets() {
        let mut h = LatencyHistogram::new();
        h.record(123);
        h.clear();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.max_ns(), 0);
    }

    #[test]
    fn snapshot_display_mentions_every_kind() {
        let s = LatencySnapshot::default().to_string();
        for key in ["read:", "program:", "erase:", "total:"] {
            assert!(s.contains(key), "missing {key}");
        }
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn out_of_range_quantile_panics() {
        LatencyHistogram::new().quantile(1.5);
    }
}
