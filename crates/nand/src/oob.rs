//! Out-of-band (spare-area) page metadata.
//!
//! Real NAND pages carry a few bytes of spare area that the controller
//! programs atomically with the data; firmware uses it to rebuild the
//! logical-to-physical mapping after a power loss by scanning every page.
//! The simulator models the subset SSD-Insider's remount path needs: the
//! logical address the page was written for, a device-stamped monotone
//! sequence number that totally orders all programs, the provenance of the
//! copy (host/GC-live vs GC backup of a protected old version), and the
//! host-time stamp that drives the recovery queue's protection window.

use crate::{Lba, SimTime};
use serde::{Deserialize, Serialize};

/// The FTL-supplied half of a page's out-of-band record.
///
/// The device completes it into an [`OobRecord`] by stamping the global
/// program sequence number at program time (see
/// [`NandDevice::program_tagged`](crate::NandDevice::program_tagged)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OobTag {
    /// The logical page this physical page was programmed for.
    pub lba: Lba,
    /// `true` when the payload was the *current* version of `lba` at program
    /// time (host writes and GC migrations of valid pages); `false` for GC
    /// backup copies of protected, already-superseded versions. Mount's
    /// conflict resolution only lets live-tagged pages win a mapping slot.
    pub live: bool,
    /// Host time of the write that produced this *content* version. GC
    /// relocation preserves the original stamp so the recovery queue can be
    /// rebuilt with the same protection-window arithmetic after a crash.
    pub stamp: SimTime,
}

impl OobTag {
    /// Tag for a page holding the current version of `lba` (host write or
    /// GC migration of a valid page).
    pub fn live(lba: Lba, stamp: SimTime) -> Self {
        OobTag {
            lba,
            live: true,
            stamp,
        }
    }

    /// Tag for a GC backup copy of a protected old version of `lba`.
    pub fn backup(lba: Lba, stamp: SimTime) -> Self {
        OobTag {
            lba,
            live: false,
            stamp,
        }
    }
}

/// The full out-of-band record stored with a programmed page.
///
/// This is the [`OobTag`] plus the device-stamped program sequence number.
/// `seq` is strictly monotone across the whole device and survives power
/// loss, so "newest wins" conflict resolution during mount is a simple
/// max-by-`seq` per logical address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OobRecord {
    /// The logical page this physical page was programmed for.
    pub lba: Lba,
    /// Global program sequence number (1-based, strictly monotone).
    pub seq: u64,
    /// Whether the payload was the current version of `lba` at program time.
    pub live: bool,
    /// Host time of the write that produced this content version.
    pub stamp: SimTime,
}

impl OobRecord {
    pub(crate) fn from_tag(tag: OobTag, seq: u64) -> Self {
        OobRecord {
            lba: tag.lba,
            seq,
            live: tag.live,
            stamp: tag.stamp,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_constructors_set_provenance() {
        let t = OobTag::live(Lba::new(7), SimTime::from_secs(1));
        assert!(t.live);
        let b = OobTag::backup(Lba::new(7), SimTime::from_secs(1));
        assert!(!b.live);
        assert_eq!(t.lba, b.lba);
    }

    #[test]
    fn record_completes_tag_with_seq() {
        let r = OobRecord::from_tag(OobTag::live(Lba::new(3), SimTime::from_millis(10)), 42);
        assert_eq!(r.lba, Lba::new(3));
        assert_eq!(r.seq, 42);
        assert!(r.live);
        assert_eq!(r.stamp, SimTime::from_millis(10));
    }
}
