//! Shared simulation-level types: logical block addresses and simulated time.
//!
//! These live in the bottom crate of the stack so the FTL, the detector and
//! the workload generators all agree on one definition.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A logical block address, as seen in a block-I/O request header.
///
/// One LBA addresses one logical page (4 KiB by default). The SSD-Insider
/// detector observes streams of `(time, lba, mode, length)` headers; the FTL
/// translates LBAs to physical page addresses.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Lba(u64);

impl Lba {
    /// Creates a logical block address.
    pub const fn new(index: u64) -> Self {
        Lba(index)
    }

    /// The flat logical index.
    pub const fn index(self) -> u64 {
        self.0
    }

    /// The address `n` blocks after this one.
    pub const fn offset(self, n: u64) -> Self {
        Lba(self.0 + n)
    }

    /// The next logical block address.
    pub const fn next(self) -> Self {
        self.offset(1)
    }
}

impl fmt::Display for Lba {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lba:{}", self.0)
    }
}

impl From<u64> for Lba {
    fn from(v: u64) -> Self {
        Lba(v)
    }
}

/// A point in simulated time, with microsecond resolution.
///
/// Traces are replayed against simulated time rather than wall-clock time so
/// experiments are deterministic and can cover minutes of I/O in milliseconds
/// of CPU. The detector's 1-second time slices and the recovery window are
/// expressed in this unit.
///
/// # Example
///
/// ```rust
/// use insider_nand::SimTime;
///
/// let t = SimTime::from_secs(9) + SimTime::from_millis(500);
/// assert_eq!(t.as_micros(), 9_500_000);
/// assert_eq!(t.slice_index(SimTime::from_secs(1)), 9);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates a time from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates a time from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// This time in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This time in (truncated) milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// This time in seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Index of the time slice of length `slice` containing this instant.
    ///
    /// # Panics
    ///
    /// Panics if `slice` is zero.
    pub fn slice_index(self, slice: SimTime) -> u64 {
        assert!(slice.0 > 0, "slice length must be non-zero");
        self.0 / slice.0
    }

    /// Saturating subtraction: `self - rhs`, clamped at zero.
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Saturating addition: `self + rhs`, clamped at the maximum instant.
    pub fn saturating_add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }

    /// `self + micros` microseconds.
    pub const fn plus_micros(self, us: u64) -> SimTime {
        SimTime(self.0 + us)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    /// # Panics
    ///
    /// Panics on underflow (in release builds too — a silently wrapped
    /// timestamp would corrupt every window computation downstream); use
    /// [`SimTime::saturating_sub`] when `rhs` may exceed `self`.
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lba_arithmetic() {
        let a = Lba::new(10);
        assert_eq!(a.next(), Lba::new(11));
        assert_eq!(a.offset(5), Lba::new(15));
        assert_eq!(a.index(), 10);
        assert_eq!(a.to_string(), "lba:10");
    }

    #[test]
    fn simtime_conversions() {
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimTime::from_millis(1500).as_millis(), 1500);
        assert!((SimTime::from_millis(250).as_secs_f64() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn simtime_arithmetic() {
        let t = SimTime::from_secs(1) + SimTime::from_millis(500);
        assert_eq!(t.as_millis(), 1500);
        assert_eq!(t - SimTime::from_millis(500), SimTime::from_secs(1));
        assert_eq!(
            SimTime::from_secs(1).saturating_sub(SimTime::from_secs(5)),
            SimTime::ZERO
        );
        let mut u = SimTime::ZERO;
        u += SimTime::from_micros(7);
        assert_eq!(u.as_micros(), 7);
    }

    #[test]
    fn slice_indexing() {
        let slice = SimTime::from_secs(1);
        assert_eq!(SimTime::from_millis(999).slice_index(slice), 0);
        assert_eq!(SimTime::from_millis(1000).slice_index(slice), 1);
        assert_eq!(SimTime::from_secs(10).slice_index(slice), 10);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_slice_panics() {
        SimTime::from_secs(1).slice_index(SimTime::ZERO);
    }

    #[test]
    fn saturating_add_clamps() {
        let max = SimTime::from_micros(u64::MAX);
        assert_eq!(max.saturating_add(SimTime::from_secs(1)), max);
        assert_eq!(
            SimTime::from_secs(1).saturating_add(SimTime::from_secs(2)),
            SimTime::from_secs(3)
        );
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_underflow_panics() {
        let _ = SimTime::from_secs(1) - SimTime::from_secs(2);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(Lba::new(1) < Lba::new(2));
    }
}
