//! Deterministic fault injection.
//!
//! Failure-injection tests need repeatable faults rather than random ones, so
//! the plan counts operations of each kind and fails exactly the scheduled
//! occurrences. Besides one-shot (`fail_nth`) and periodic (`fail_every_nth`)
//! per-operation faults, a plan can schedule a *power cut*: after `n`
//! program/erase attempts the device latches off and every subsequent
//! operation fails with [`NandError::PowerLoss`] until the FTL remounts it —
//! the mechanism behind the crash-point sweep harness.
//!
//! The plan is consulted once per command at the instant the command is
//! *issued* (drained from a batch submit), so counting follows issue order.
//! Mutations are never reordered by the command scheduler — only reads may
//! be promoted, and reads do not advance the mutation counter — so issue
//! order equals submission order for every counted command, and a power cut
//! that lands mid-batch atomically loses the triggering program plus the
//! whole queued-but-unissued tail of its batch.
//!
//! [`NandError::PowerLoss`]: crate::NandError::PowerLoss

use std::collections::BTreeSet;

/// The kind of device operation a fault can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// Page read.
    Read,
    /// Page program.
    Program,
    /// Block erase.
    Erase,
}

impl FaultKind {
    fn label(self) -> &'static str {
        match self {
            FaultKind::Read => "read",
            FaultKind::Program => "program",
            FaultKind::Erase => "erase",
        }
    }
}

/// Outcome of consulting the plan for one operation attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FaultCheck {
    /// No fault: the operation proceeds.
    Proceed,
    /// A scheduled or periodic fault fires; the operation fails with
    /// `InjectedFault` and is not applied.
    Injected,
    /// The power-cut schedule fires on this attempt: the operation fails
    /// with `PowerLoss`, is not applied, and the device latches off.
    PowerCut,
    /// The device is latched off by an earlier power cut; the operation
    /// fails with `PowerLoss`.
    PoweredOff,
}

/// A deterministic schedule of operation failures.
///
/// `fail_nth(FaultKind::Program, 3)` makes the third program operation after
/// the plan is installed return [`NandError::InjectedFault`]. Counting is
/// 1-based and per-kind. A triggered fault is consumed.
/// `fail_every_nth(kind, n)` additionally fails every `n`-th attempt of
/// `kind`, forever. `power_cut_after(n)` cuts power on the `n`-th
/// program-or-erase attempt (one shared 1-based counter over both mutating
/// kinds): that attempt and everything after it fails with
/// [`NandError::PowerLoss`] until the device is power-cycled.
///
/// [`NandError::InjectedFault`]: crate::NandError::InjectedFault
/// [`NandError::PowerLoss`]: crate::NandError::PowerLoss
///
/// # Example
///
/// ```rust
/// use insider_nand::{FaultKind, FaultPlan};
///
/// let mut plan = FaultPlan::new();
/// plan.fail_nth(FaultKind::Program, 1);
/// assert!(plan.should_fail(FaultKind::Program)); // first program fails
/// assert!(!plan.should_fail(FaultKind::Program)); // consumed
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    scheduled: BTreeSet<(FaultKind, u64)>,
    /// Fail every n-th attempt, per kind (read / program / erase).
    every: [Option<u64>; 3],
    counters: [u64; 3],
    /// Cut power on the n-th program-or-erase attempt (shared counter).
    power_cut_at: Option<u64>,
    /// Program + erase attempts seen so far.
    mutations: u64,
    /// Latched after a power cut fires; cleared by `power_restored`.
    powered_off: bool,
}

impl FaultPlan {
    /// An empty plan that never fails anything.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules the `n`-th (1-based) operation of `kind` to fail.
    pub fn fail_nth(&mut self, kind: FaultKind, n: u64) -> &mut Self {
        assert!(n >= 1, "fault occurrence index is 1-based");
        self.scheduled.insert((kind, n));
        self
    }

    /// Fails every `n`-th (1-based) operation of `kind`, indefinitely.
    ///
    /// Periodic faults are not consumed and do not count toward
    /// [`is_exhausted`](Self::is_exhausted).
    pub fn fail_every_nth(&mut self, kind: FaultKind, n: u64) -> &mut Self {
        assert!(n >= 1, "fault period is 1-based");
        self.every[Self::slot(kind)] = Some(n);
        self
    }

    /// Cuts power on the `n`-th (1-based) program-or-erase attempt.
    ///
    /// Programs and erases share one attempt counter, so `n` indexes the
    /// device's mutation sequence — exactly the crash points a sweep wants
    /// to enumerate. The triggering operation fails with
    /// [`NandError::PowerLoss`](crate::NandError::PowerLoss) *without being
    /// applied*, and the plan latches: every later read, program or erase
    /// also fails with `PowerLoss` until the device is power-cycled (see
    /// [`NandDevice::power_cut`](crate::NandDevice::power_cut)).
    pub fn power_cut_after(&mut self, n: u64) -> &mut Self {
        assert!(n >= 1, "power-cut mutation index is 1-based");
        self.power_cut_at = Some(n);
        self
    }

    fn slot(kind: FaultKind) -> usize {
        match kind {
            FaultKind::Read => 0,
            FaultKind::Program => 1,
            FaultKind::Erase => 2,
        }
    }

    /// Records one operation attempt of `kind` and classifies it.
    pub(crate) fn check(&mut self, kind: FaultKind) -> FaultCheck {
        if self.powered_off {
            return FaultCheck::PoweredOff;
        }
        let slot = Self::slot(kind);
        self.counters[slot] += 1;
        if matches!(kind, FaultKind::Program | FaultKind::Erase) {
            self.mutations += 1;
            if self.power_cut_at == Some(self.mutations) {
                self.power_cut_at = None;
                self.powered_off = true;
                return FaultCheck::PowerCut;
            }
        }
        let count = self.counters[slot];
        if self.scheduled.remove(&(kind, count)) {
            return FaultCheck::Injected;
        }
        if let Some(n) = self.every[slot] {
            if count.is_multiple_of(n) {
                return FaultCheck::Injected;
            }
        }
        FaultCheck::Proceed
    }

    /// Records one operation of `kind` and reports whether it must fail.
    pub fn should_fail(&mut self, kind: FaultKind) -> bool {
        self.check(kind) != FaultCheck::Proceed
    }

    /// Whether a power cut has fired and the device is latched off.
    pub fn is_powered_off(&self) -> bool {
        self.powered_off
    }

    /// Whether a power cut is scheduled but has not fired yet.
    pub fn power_cut_pending(&self) -> bool {
        self.power_cut_at.is_some()
    }

    /// Clears the powered-off latch (the device was power-cycled).
    pub(crate) fn power_restored(&mut self) {
        self.powered_off = false;
    }

    /// Human-readable label for the fault, used in error messages.
    pub fn label(kind: FaultKind) -> &'static str {
        kind.label()
    }

    /// Whether all one-shot faults (scheduled occurrences and a pending
    /// power cut) have been consumed. Periodic `fail_every_nth` schedules
    /// never exhaust and are not considered.
    pub fn is_exhausted(&self) -> bool {
        self.scheduled.is_empty() && self.power_cut_at.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fails_exactly_the_scheduled_occurrence() {
        let mut plan = FaultPlan::new();
        plan.fail_nth(FaultKind::Erase, 2);
        assert!(!plan.should_fail(FaultKind::Erase));
        assert!(plan.should_fail(FaultKind::Erase));
        assert!(!plan.should_fail(FaultKind::Erase));
        assert!(plan.is_exhausted());
    }

    #[test]
    fn kinds_count_independently() {
        let mut plan = FaultPlan::new();
        plan.fail_nth(FaultKind::Read, 1);
        assert!(!plan.should_fail(FaultKind::Program));
        assert!(plan.should_fail(FaultKind::Read));
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn zero_occurrence_panics() {
        FaultPlan::new().fail_nth(FaultKind::Read, 0);
    }

    #[test]
    fn multiple_faults_same_kind() {
        let mut plan = FaultPlan::new();
        plan.fail_nth(FaultKind::Program, 1)
            .fail_nth(FaultKind::Program, 3);
        assert!(plan.should_fail(FaultKind::Program));
        assert!(!plan.should_fail(FaultKind::Program));
        assert!(plan.should_fail(FaultKind::Program));
    }

    #[test]
    fn every_nth_fires_periodically() {
        let mut plan = FaultPlan::new();
        plan.fail_every_nth(FaultKind::Program, 3);
        let fired: Vec<bool> = (0..9)
            .map(|_| plan.should_fail(FaultKind::Program))
            .collect();
        assert_eq!(
            fired,
            [false, false, true, false, false, true, false, false, true]
        );
        assert!(
            plan.is_exhausted(),
            "periodic schedules never exhaust the plan"
        );
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn zero_period_panics() {
        FaultPlan::new().fail_every_nth(FaultKind::Program, 0);
    }

    #[test]
    fn power_cut_counts_programs_and_erases_jointly() {
        let mut plan = FaultPlan::new();
        plan.power_cut_after(3);
        assert!(!plan.is_exhausted());
        assert_eq!(plan.check(FaultKind::Program), FaultCheck::Proceed);
        assert_eq!(plan.check(FaultKind::Read), FaultCheck::Proceed);
        assert_eq!(plan.check(FaultKind::Erase), FaultCheck::Proceed);
        assert_eq!(plan.check(FaultKind::Program), FaultCheck::PowerCut);
        assert!(plan.is_powered_off());
        // Everything fails while latched off, including reads.
        assert_eq!(plan.check(FaultKind::Read), FaultCheck::PoweredOff);
        assert_eq!(plan.check(FaultKind::Erase), FaultCheck::PoweredOff);
        plan.power_restored();
        assert_eq!(plan.check(FaultKind::Program), FaultCheck::Proceed);
        assert!(plan.is_exhausted());
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn zero_power_cut_index_panics() {
        FaultPlan::new().power_cut_after(0);
    }
}
