//! Deterministic fault injection.
//!
//! Failure-injection tests need repeatable faults rather than random ones, so
//! the plan counts operations of each kind and fails exactly the scheduled
//! occurrences.

use std::collections::BTreeSet;

/// The kind of device operation a fault can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// Page read.
    Read,
    /// Page program.
    Program,
    /// Block erase.
    Erase,
}

impl FaultKind {
    fn label(self) -> &'static str {
        match self {
            FaultKind::Read => "read",
            FaultKind::Program => "program",
            FaultKind::Erase => "erase",
        }
    }
}

/// A deterministic schedule of operation failures.
///
/// `fail_nth(FaultKind::Program, 3)` makes the third program operation after
/// the plan is installed return [`NandError::InjectedFault`]. Counting is
/// 1-based and per-kind. A triggered fault is consumed.
///
/// [`NandError::InjectedFault`]: crate::NandError::InjectedFault
///
/// # Example
///
/// ```rust
/// use insider_nand::{FaultKind, FaultPlan};
///
/// let mut plan = FaultPlan::new();
/// plan.fail_nth(FaultKind::Program, 1);
/// assert!(plan.should_fail(FaultKind::Program)); // first program fails
/// assert!(!plan.should_fail(FaultKind::Program)); // consumed
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    scheduled: BTreeSet<(FaultKind, u64)>,
    counters: [u64; 3],
}

impl FaultPlan {
    /// An empty plan that never fails anything.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules the `n`-th (1-based) operation of `kind` to fail.
    pub fn fail_nth(&mut self, kind: FaultKind, n: u64) -> &mut Self {
        assert!(n >= 1, "fault occurrence index is 1-based");
        self.scheduled.insert((kind, n));
        self
    }

    fn counter_mut(&mut self, kind: FaultKind) -> &mut u64 {
        match kind {
            FaultKind::Read => &mut self.counters[0],
            FaultKind::Program => &mut self.counters[1],
            FaultKind::Erase => &mut self.counters[2],
        }
    }

    /// Records one operation of `kind` and reports whether it must fail.
    pub fn should_fail(&mut self, kind: FaultKind) -> bool {
        let c = self.counter_mut(kind);
        *c += 1;
        let key = (kind, *c);
        self.scheduled.remove(&key)
    }

    /// Human-readable label for the fault, used in error messages.
    pub fn label(kind: FaultKind) -> &'static str {
        kind.label()
    }

    /// Whether any faults remain scheduled.
    pub fn is_exhausted(&self) -> bool {
        self.scheduled.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fails_exactly_the_scheduled_occurrence() {
        let mut plan = FaultPlan::new();
        plan.fail_nth(FaultKind::Erase, 2);
        assert!(!plan.should_fail(FaultKind::Erase));
        assert!(plan.should_fail(FaultKind::Erase));
        assert!(!plan.should_fail(FaultKind::Erase));
        assert!(plan.is_exhausted());
    }

    #[test]
    fn kinds_count_independently() {
        let mut plan = FaultPlan::new();
        plan.fail_nth(FaultKind::Read, 1);
        assert!(!plan.should_fail(FaultKind::Program));
        assert!(plan.should_fail(FaultKind::Read));
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn zero_occurrence_panics() {
        FaultPlan::new().fail_nth(FaultKind::Read, 0);
    }

    #[test]
    fn multiple_faults_same_kind() {
        let mut plan = FaultPlan::new();
        plan.fail_nth(FaultKind::Program, 1).fail_nth(FaultKind::Program, 3);
        assert!(plan.should_fail(FaultKind::Program));
        assert!(!plan.should_fail(FaultKind::Program));
        assert!(plan.should_fail(FaultKind::Program));
    }
}
