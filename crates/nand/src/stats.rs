//! Operation counters and simulated busy-time accounting.

use serde::{Deserialize, Serialize};

/// Cumulative operation statistics for a [`NandDevice`](crate::NandDevice).
///
/// `busy_ns` is *simulated* device time: the sum of the configured latencies
/// of every successful operation, as if they executed serially. Experiments
/// use it to compare device-level cost between FTL policies without running
/// in real time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NandStats {
    /// Successful page reads.
    pub reads: u64,
    /// Successful page programs.
    pub programs: u64,
    /// Successful block erases.
    pub erases: u64,
    /// Failed operations (constraint violations and injected faults).
    pub failures: u64,
    /// Faults actually fired by the installed [`FaultPlan`](crate::FaultPlan):
    /// scheduled/periodic injected faults plus the power-cut trigger itself.
    /// Operations rejected merely because the device was already latched off
    /// count as `failures` but not here, so a sweep can assert exactly how
    /// many planned faults fired.
    pub injected_faults: u64,
    /// Simulated device busy time in nanoseconds.
    pub busy_ns: u64,
}

impl NandStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total successful operations.
    pub fn total_ops(&self) -> u64 {
        self.reads + self.programs + self.erases
    }

    /// Simulated busy time in seconds.
    pub fn busy_secs(&self) -> f64 {
        self.busy_ns as f64 / 1e9
    }

    pub(crate) fn record_read(&mut self, latency_ns: u64) {
        self.reads += 1;
        self.busy_ns += latency_ns;
    }

    pub(crate) fn record_program(&mut self, latency_ns: u64) {
        self.programs += 1;
        self.busy_ns += latency_ns;
    }

    pub(crate) fn record_erase(&mut self, latency_ns: u64) {
        self.erases += 1;
        self.busy_ns += latency_ns;
    }

    pub(crate) fn record_failure(&mut self) {
        self.failures += 1;
    }

    pub(crate) fn record_injected_fault(&mut self) {
        self.injected_faults += 1;
    }
}

impl std::fmt::Display for NandStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "reads={} programs={} erases={} failures={} faulted={} busy={:.3}s",
            self.reads,
            self.programs,
            self.erases,
            self.failures,
            self.injected_faults,
            self.busy_secs()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_ops_and_busy_time() {
        let mut s = NandStats::new();
        s.record_read(50_000);
        s.record_program(500_000);
        s.record_erase(3_000_000);
        s.record_failure();
        s.record_injected_fault();
        assert_eq!(s.total_ops(), 3);
        assert_eq!(s.failures, 1);
        assert_eq!(s.injected_faults, 1);
        assert_eq!(s.busy_ns, 3_550_000);
        assert!((s.busy_secs() - 0.00355).abs() < 1e-12);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!NandStats::new().to_string().is_empty());
    }
}
