//! Operation counters and simulated busy-time accounting.

use serde::{Deserialize, Serialize};

/// Cumulative operation statistics for a [`NandDevice`](crate::NandDevice).
///
/// `busy_ns` is *simulated* device time: the sum of the configured latencies
/// of every successful operation, as if they executed serially. The per-die
/// and per-channel vectors split the same integral by resource, so the
/// makespan `max(die, bus)` models perfect pipelining across dies and
/// channel buses. Experiments use these to compare device-level cost
/// between FTL policies without running in real time.
///
/// `buffers_shared` / `buffers_copied` classify every programmed payload by
/// provenance: *shared* means the backing buffer was still aliased by an
/// upstream holder at program time (the zero-copy path — the device stored
/// a reference, not a copy), *copied* means the payload arrived uniquely
/// owned (somewhere upstream materialized a private allocation for it).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NandStats {
    /// Successful page reads.
    pub reads: u64,
    /// Successful page programs.
    pub programs: u64,
    /// Successful block erases.
    pub erases: u64,
    /// Failed operations (constraint violations and injected faults).
    pub failures: u64,
    /// Faults actually fired by the installed [`FaultPlan`](crate::FaultPlan):
    /// scheduled/periodic injected faults plus the power-cut trigger itself.
    /// Operations rejected merely because the device was already latched off
    /// count as `failures` but not here, so a sweep can assert exactly how
    /// many planned faults fired.
    pub injected_faults: u64,
    /// Simulated device busy time in nanoseconds.
    pub busy_ns: u64,
    /// Programs whose payload was zero-copy (backing buffer aliased
    /// upstream at program time).
    pub buffers_shared: u64,
    /// Programs whose payload arrived as a private copy.
    pub buffers_copied: u64,
    /// In-flight erases suspended by a read (erase-suspend model; zero
    /// unless `NandConfig::erase_suspend` is enabled).
    #[serde(default)]
    pub erases_suspended: u64,
    /// Total resume-penalty time paid by suspended erases, ns. Already
    /// folded into `busy_ns` and the per-die integrals.
    #[serde(default)]
    pub suspend_overhead_ns: u64,
    /// Host commands a blocking-GC firmware stall delayed before
    /// dispatch (zero unless a blocking drain ran in a scheduled mode).
    #[serde(default)]
    pub gc_stalled_cmds: u64,
    /// Total submission-to-dispatch wait those commands paid, ns.
    #[serde(default)]
    pub gc_stall_ns: u64,
    /// Per-die busy integrals, ns (empty until sized by the device).
    pub die_busy_ns: Vec<u64>,
    /// Per-channel bus busy integrals, ns (empty until sized by the device).
    pub bus_busy_ns: Vec<u64>,
}

impl NandStats {
    /// A zeroed counter set with no per-resource vectors.
    pub fn new() -> Self {
        Self::default()
    }

    /// A zeroed counter set with per-die and per-channel vectors sized for
    /// a device with `dies` dies and `channels` channels.
    pub fn with_shape(dies: usize, channels: usize) -> Self {
        NandStats {
            die_busy_ns: vec![0; dies],
            bus_busy_ns: vec![0; channels],
            ..Self::default()
        }
    }

    /// Total successful operations.
    pub fn total_ops(&self) -> u64 {
        self.reads + self.programs + self.erases
    }

    /// Simulated busy time in seconds.
    pub fn busy_secs(&self) -> f64 {
        self.busy_ns as f64 / 1e9
    }

    /// Parallel makespan: the busy integral of the most loaded die or
    /// channel bus — total device time assuming perfect pipelining.
    pub fn parallel_busy_ns(&self) -> u64 {
        let die = self.die_busy_ns.iter().copied().max().unwrap_or(0);
        let bus = self.bus_busy_ns.iter().copied().max().unwrap_or(0);
        die.max(bus)
    }

    /// Per-die busy fractions of the parallel makespan (empty when the
    /// vectors are unsized or the device never ran).
    pub fn die_busy_fractions(&self) -> Vec<f64> {
        let span = self.parallel_busy_ns();
        if span == 0 {
            return vec![0.0; self.die_busy_ns.len()];
        }
        self.die_busy_ns
            .iter()
            .map(|&ns| ns as f64 / span as f64)
            .collect()
    }

    /// Per-channel bus utilization: each channel's bus busy integral as a
    /// fraction of the parallel makespan.
    pub fn bus_utilization(&self) -> Vec<f64> {
        let span = self.parallel_busy_ns();
        if span == 0 {
            return vec![0.0; self.bus_busy_ns.len()];
        }
        self.bus_busy_ns
            .iter()
            .map(|&ns| ns as f64 / span as f64)
            .collect()
    }

    pub(crate) fn record_read(&mut self, latency_ns: u64) {
        self.reads += 1;
        self.busy_ns += latency_ns;
    }

    pub(crate) fn record_program(&mut self, latency_ns: u64) {
        self.programs += 1;
        self.busy_ns += latency_ns;
    }

    pub(crate) fn record_erase(&mut self, latency_ns: u64) {
        self.erases += 1;
        self.busy_ns += latency_ns;
    }

    /// Bulk accounting for a mount scan: `pages` spare-area reads charged
    /// at `per_page_ns` each. Counts and the serial busy integral move;
    /// the per-die/per-bus vectors and the command scheduler are left
    /// untouched — a mount scan happens before the host queue exists.
    pub(crate) fn record_scan(&mut self, pages: u64, per_page_ns: u64) {
        self.reads += pages;
        self.busy_ns += pages.saturating_mul(per_page_ns);
    }

    pub(crate) fn record_failure(&mut self) {
        self.failures += 1;
    }

    pub(crate) fn record_injected_fault(&mut self) {
        self.injected_faults += 1;
    }

    pub(crate) fn record_buffer(&mut self, shared: bool) {
        if shared {
            self.buffers_shared += 1;
        } else {
            self.buffers_copied += 1;
        }
    }
}

impl std::fmt::Display for NandStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "reads={} programs={} erases={} failures={} faulted={} busy={:.3}s shared={} copied={}",
            self.reads,
            self.programs,
            self.erases,
            self.failures,
            self.injected_faults,
            self.busy_secs(),
            self.buffers_shared,
            self.buffers_copied,
        )?;
        if self.erases_suspended > 0 {
            write!(
                f,
                " suspended={} suspend_overhead={:.3}ms",
                self.erases_suspended,
                self.suspend_overhead_ns as f64 / 1e6,
            )?;
        }
        if self.gc_stalled_cmds > 0 {
            write!(
                f,
                " gc_stalled={} gc_stall={:.3}ms",
                self.gc_stalled_cmds,
                self.gc_stall_ns as f64 / 1e6,
            )?;
        }
        if !self.die_busy_ns.is_empty() && self.parallel_busy_ns() > 0 {
            write!(f, "\ndie busy:")?;
            for (i, frac) in self.die_busy_fractions().iter().enumerate() {
                write!(f, " d{i}={:.2}", frac)?;
            }
            write!(f, "\nbus util:")?;
            for (i, frac) in self.bus_utilization().iter().enumerate() {
                write!(f, " ch{i}={:.2}", frac)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_ops_and_busy_time() {
        let mut s = NandStats::new();
        s.record_read(50_000);
        s.record_program(500_000);
        s.record_erase(3_000_000);
        s.record_failure();
        s.record_injected_fault();
        assert_eq!(s.total_ops(), 3);
        assert_eq!(s.failures, 1);
        assert_eq!(s.injected_faults, 1);
        assert_eq!(s.busy_ns, 3_550_000);
        assert!((s.busy_secs() - 0.00355).abs() < 1e-12);
    }

    #[test]
    fn buffer_provenance_counters() {
        let mut s = NandStats::new();
        s.record_buffer(true);
        s.record_buffer(true);
        s.record_buffer(false);
        assert_eq!(s.buffers_shared, 2);
        assert_eq!(s.buffers_copied, 1);
        let line = s.to_string();
        assert!(line.contains("shared=2"), "{line}");
        assert!(line.contains("copied=1"), "{line}");
    }

    #[test]
    fn per_resource_vectors_and_utilization() {
        let mut s = NandStats::with_shape(2, 1);
        s.die_busy_ns[0] = 100;
        s.die_busy_ns[1] = 50;
        s.bus_busy_ns[0] = 80;
        assert_eq!(s.parallel_busy_ns(), 100);
        assert_eq!(s.die_busy_fractions(), vec![1.0, 0.5]);
        assert_eq!(s.bus_utilization(), vec![0.8]);
        let text = s.to_string();
        assert!(text.contains("die busy:"), "{text}");
        assert!(text.contains("d0=1.00"), "{text}");
        assert!(text.contains("ch0=0.80"), "{text}");
    }

    #[test]
    fn idle_device_omits_utilization_lines() {
        let s = NandStats::with_shape(4, 2);
        assert_eq!(s.parallel_busy_ns(), 0);
        assert_eq!(s.die_busy_fractions(), vec![0.0; 4]);
        assert!(!s.to_string().contains("die busy:"));
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!NandStats::new().to_string().is_empty());
    }
}
