//! Page state and content.

use crate::oob::OobRecord;
use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// Lifecycle state of a NAND page.
///
/// A page moves `Free → Valid → Invalid → (erase) → Free`. The `Invalid`
/// transition is driven by the FTL above (the device itself only knows
/// free/programmed); the simulator tracks it so garbage-collection policies
/// and SSD-Insider's delayed-deletion protection can be audited at the
/// device level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum PageState {
    /// Erased and programmable.
    #[default]
    Free,
    /// Programmed and holding live data.
    Valid,
    /// Programmed but superseded; reclaimable once the block is erased
    /// (unless protected by a recovery-queue reference).
    Invalid,
}

/// A single NAND page: its state plus the programmed payload and
/// out-of-band (spare-area) record, if any.
#[derive(Debug, Clone, Default)]
pub struct Page {
    state: PageState,
    data: Option<Bytes>,
    oob: Option<OobRecord>,
}

impl Page {
    /// A fresh, erased page.
    pub fn erased() -> Self {
        Page::default()
    }

    /// Current lifecycle state.
    pub fn state(&self) -> PageState {
        self.state
    }

    /// Programmed payload, if the page has been programmed since last erase.
    pub fn data(&self) -> Option<&Bytes> {
        self.data.as_ref()
    }

    /// Out-of-band record programmed with the page, if any. Pages written
    /// through the untagged [`NandDevice::program`](crate::NandDevice::program)
    /// path carry no record and are skipped by mount scans.
    pub fn oob(&self) -> Option<&OobRecord> {
        self.oob.as_ref()
    }

    /// Whether the page can be programmed.
    pub fn is_free(&self) -> bool {
        self.state == PageState::Free
    }

    pub(crate) fn program(&mut self, data: Bytes, oob: Option<OobRecord>) {
        debug_assert!(self.is_free(), "programming a non-free page");
        self.state = PageState::Valid;
        self.data = Some(data);
        self.oob = oob;
    }

    pub(crate) fn invalidate(&mut self) {
        debug_assert_eq!(
            self.state,
            PageState::Valid,
            "invalidating a non-valid page"
        );
        self.state = PageState::Invalid;
    }

    pub(crate) fn revalidate(&mut self) {
        debug_assert_eq!(
            self.state,
            PageState::Invalid,
            "revalidating a non-invalid page"
        );
        self.state = PageState::Valid;
    }

    pub(crate) fn erase(&mut self) {
        self.state = PageState::Free;
        self.data = None;
        self.oob = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_free_valid_invalid_free() {
        let mut p = Page::erased();
        assert!(p.is_free());
        assert!(p.data().is_none());
        assert!(p.oob().is_none());

        let oob = OobRecord::from_tag(
            crate::oob::OobTag::live(crate::Lba::new(4), crate::SimTime::ZERO),
            1,
        );
        p.program(Bytes::from_static(b"x"), Some(oob));
        assert_eq!(p.state(), PageState::Valid);
        assert_eq!(p.data().unwrap().as_ref(), b"x");
        assert_eq!(p.oob().unwrap().lba, crate::Lba::new(4));

        p.invalidate();
        assert_eq!(p.state(), PageState::Invalid);
        // Invalid pages still hold their data and OOB (delayed deletion).
        assert_eq!(p.data().unwrap().as_ref(), b"x");
        assert!(p.oob().is_some());

        p.erase();
        assert!(p.is_free());
        assert!(p.data().is_none());
        assert!(p.oob().is_none());
    }

    #[test]
    fn default_state_is_free() {
        assert_eq!(PageState::default(), PageState::Free);
    }
}
