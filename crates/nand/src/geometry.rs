//! Physical geometry of the simulated NAND device.

use serde::{Deserialize, Serialize};

/// Physical layout of a NAND device: how many channels, chips, blocks and
/// pages it has, and how large each page is.
///
/// The geometry is immutable after construction; every address computation in
/// the simulator derives from it.
///
/// # Example
///
/// ```rust
/// use insider_nand::Geometry;
///
/// let g = Geometry::builder()
///     .channels(8)
///     .chips_per_channel(8)
///     .blocks_per_chip(128)
///     .pages_per_block(64)
///     .page_size(4096)
///     .build();
/// assert_eq!(g.total_blocks(), 8 * 8 * 128);
/// assert_eq!(g.total_pages(), g.total_blocks() as u64 * 64);
/// assert_eq!(g.capacity_bytes(), g.total_pages() as u64 * 4096);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Geometry {
    channels: u32,
    chips_per_channel: u32,
    blocks_per_chip: u32,
    pages_per_block: u32,
    page_size: u32,
}

impl Geometry {
    /// Starts building a geometry. All dimensions default to a small test
    /// device (1 channel, 1 chip, 16 blocks, 16 pages, 4096-byte pages).
    pub fn builder() -> GeometryBuilder {
        GeometryBuilder::default()
    }

    /// A small geometry suitable for unit tests: 1x1 chips, 16 blocks of
    /// 16 pages, 4096-byte pages (1 MiB total).
    pub fn tiny() -> Self {
        Self::builder().build()
    }

    /// Number of channels.
    pub fn channels(&self) -> u32 {
        self.channels
    }

    /// Number of chips (ways) attached to each channel.
    pub fn chips_per_channel(&self) -> u32 {
        self.chips_per_channel
    }

    /// Number of erase blocks per chip.
    pub fn blocks_per_chip(&self) -> u32 {
        self.blocks_per_chip
    }

    /// Number of pages in each erase block.
    pub fn pages_per_block(&self) -> u32 {
        self.pages_per_block
    }

    /// Size of a page in bytes.
    pub fn page_size(&self) -> u32 {
        self.page_size
    }

    /// Total number of chips in the device.
    pub fn total_chips(&self) -> u32 {
        self.channels * self.chips_per_channel
    }

    /// Total number of erase blocks in the device.
    pub fn total_blocks(&self) -> u32 {
        self.total_chips() * self.blocks_per_chip
    }

    /// Total number of pages in the device.
    pub fn total_pages(&self) -> u64 {
        self.total_blocks() as u64 * self.pages_per_block as u64
    }

    /// Raw capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.total_pages() * self.page_size as u64
    }
}

impl Default for Geometry {
    fn default() -> Self {
        Self::tiny()
    }
}

/// Builder for [`Geometry`].
///
/// Produced by [`Geometry::builder`]; finished with [`GeometryBuilder::build`].
#[derive(Debug, Clone)]
pub struct GeometryBuilder {
    channels: u32,
    chips_per_channel: u32,
    blocks_per_chip: u32,
    pages_per_block: u32,
    page_size: u32,
}

impl Default for GeometryBuilder {
    fn default() -> Self {
        Self {
            channels: 1,
            chips_per_channel: 1,
            blocks_per_chip: 16,
            pages_per_block: 16,
            page_size: 4096,
        }
    }
}

impl GeometryBuilder {
    /// Sets the number of channels.
    ///
    /// # Panics
    ///
    /// `build` panics if set to zero.
    pub fn channels(&mut self, n: u32) -> &mut Self {
        self.channels = n;
        self
    }

    /// Sets the number of chips (ways) per channel.
    pub fn chips_per_channel(&mut self, n: u32) -> &mut Self {
        self.chips_per_channel = n;
        self
    }

    /// Sets the number of erase blocks per chip.
    pub fn blocks_per_chip(&mut self, n: u32) -> &mut Self {
        self.blocks_per_chip = n;
        self
    }

    /// Sets the number of pages per erase block.
    pub fn pages_per_block(&mut self, n: u32) -> &mut Self {
        self.pages_per_block = n;
        self
    }

    /// Sets the page size in bytes.
    pub fn page_size(&mut self, bytes: u32) -> &mut Self {
        self.page_size = bytes;
        self
    }

    /// Finishes the builder.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero, or if the total page count would
    /// overflow a `u64`.
    pub fn build(&self) -> Geometry {
        assert!(self.channels > 0, "geometry must have at least one channel");
        assert!(
            self.chips_per_channel > 0,
            "geometry must have at least one chip per channel"
        );
        assert!(
            self.blocks_per_chip > 0,
            "geometry must have at least one block per chip"
        );
        assert!(
            self.pages_per_block > 0,
            "geometry must have at least one page per block"
        );
        assert!(self.page_size > 0, "page size must be non-zero");
        Geometry {
            channels: self.channels,
            chips_per_channel: self.chips_per_channel,
            blocks_per_chip: self.blocks_per_chip,
            pages_per_block: self.pages_per_block,
            page_size: self.page_size,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_geometry_dimensions() {
        let g = Geometry::tiny();
        assert_eq!(g.channels(), 1);
        assert_eq!(g.chips_per_channel(), 1);
        assert_eq!(g.total_blocks(), 16);
        assert_eq!(g.total_pages(), 256);
        assert_eq!(g.capacity_bytes(), 256 * 4096);
    }

    #[test]
    fn builder_sets_all_dimensions() {
        let g = Geometry::builder()
            .channels(8)
            .chips_per_channel(8)
            .blocks_per_chip(128)
            .pages_per_block(64)
            .page_size(2048)
            .build();
        assert_eq!(g.total_chips(), 64);
        assert_eq!(g.total_blocks(), 8192);
        assert_eq!(g.total_pages(), 8192 * 64);
        assert_eq!(g.page_size(), 2048);
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channels_panics() {
        Geometry::builder().channels(0).build();
    }

    #[test]
    #[should_panic(expected = "page size must be non-zero")]
    fn zero_page_size_panics() {
        Geometry::builder().page_size(0).build();
    }

    #[test]
    fn default_equals_tiny() {
        assert_eq!(Geometry::default(), Geometry::tiny());
    }

    #[test]
    fn capacity_does_not_overflow_for_large_devices() {
        // A 512 GB device comparable to the paper's prototype card.
        let g = Geometry::builder()
            .channels(8)
            .chips_per_channel(8)
            .blocks_per_chip(2048)
            .pages_per_block(256)
            .page_size(16384)
            .build();
        assert_eq!(g.capacity_bytes(), 512 * 1024 * 1024 * 1024);
    }
}
