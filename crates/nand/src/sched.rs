//! Per-channel/per-die NAND command scheduler.
//!
//! The legacy timing model charges every successful operation to a per-die
//! and per-channel *busy integral* and reports the makespan `max(die, bus)` —
//! an aggregate estimate with no notion of a queue, so it cannot say what
//! latency any single command observed. This module adds a queueing
//! simulator on top of the same integrals:
//!
//! - every command *arrives* at the device clock (`set_now`, driven by the
//!   simulated trace time), waits for its die and its channel bus, and
//!   *completes* at `max(die done, bus done)`;
//! - dies execute their queue in order, back to back; the channel bus is a
//!   second, independently seized resource (transfer and array time are not
//!   serialized against each other, matching the decoupled busy-integral
//!   accounting — the scheduler's busy makespan therefore equals the legacy
//!   estimate exactly, which debug builds assert);
//! - in [`SchedMode::OutOfOrder`] a read may be promoted ahead of *queued*
//!   (not yet started) programs and erases on its die. Reads never pass
//!   reads, mutations never pass anything, and a read never passes a
//!   program to the same page or an erase to the same block — the
//!   dependencies that would change observable data;
//! - completed commands feed per-kind latency histograms
//!   ([`crate::LatencySnapshot`]), the per-request figure a production
//!   drive lives by.
//!
//! A closed-loop queue-depth throttle models a host that keeps at most
//! `queue_depth` commands in flight: when the ring is full, the next
//! command's arrival is pushed to the completion of the command issued
//! `queue_depth` ago. Without it, a trace replayed faster than the device
//! drains would grow queues (and reported latency) without bound.
//!
//! The scheduler is *timing only*: page contents, OOB records and error
//! results are applied synchronously at submit, in submission order, so
//! data-path behavior (and the crash sweep's acked-prefix durability
//! contract) is byte-identical across all three modes.

use crate::fault::FaultKind;
use crate::latency::{KindLatency, LatencyHistogram, LatencySnapshot};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Safety valve: windows force-finalized beyond this per-die queue length.
/// Bounds scheduler memory under open-loop overload; finalizing early only
/// freezes a latency sample that could otherwise still grow.
const MAX_WINDOWS_PER_DIE: usize = 256;

/// Which timing model the device runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum SchedMode {
    /// Busy-integral estimate only (the pre-scheduler model): no command
    /// queue, no per-command timestamps, no latency percentiles. Kept as
    /// the differential baseline.
    Legacy,
    /// Full command queue, strict FIFO per die.
    InOrder,
    /// Full command queue; reads may overtake queued programs/erases on
    /// their die (never same-page/same-block dependencies, never other
    /// reads). The default.
    #[default]
    OutOfOrder,
}

impl SchedMode {
    /// Display name for reports.
    pub fn name(self) -> &'static str {
        match self {
            SchedMode::Legacy => "legacy",
            SchedMode::InOrder => "in-order",
            SchedMode::OutOfOrder => "out-of-order",
        }
    }
}

impl std::fmt::Display for SchedMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One finalized command, emitted when capture is enabled
/// (`NandConfig::capture_commands`). The ordering proptests use these to
/// prove out-of-order issue never reorders a same-page read after its
/// program or a same-block read after its erase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CmdRecord {
    /// Command kind.
    pub kind: FaultKind,
    /// Flat physical page index (`u64::MAX` for erases).
    pub page: u64,
    /// Flat physical block index.
    pub block: u64,
    /// Die the command executed on.
    pub die: usize,
    /// Global submission sequence number (issue order).
    pub submit: u64,
    /// Arrival at the device, ns of simulated time.
    pub arrival_ns: u64,
    /// Die service start, ns.
    pub start_ns: u64,
    /// Completion (`max(die done, bus done)`), ns.
    pub complete_ns: u64,
}

/// A queued-but-unfinalized command on one die.
#[derive(Debug, Clone, Copy)]
struct Window {
    kind: FaultKind,
    page: u64,
    block: u64,
    submit: u64,
    arrival_ns: u64,
    start_ns: u64,
    service_ns: u64,
    /// Channel-bus completion, fixed at admission (the bus is seized in
    /// admission order); zero when the command moves no data on the bus.
    bus_done_ns: u64,
}

impl Window {
    fn end_ns(&self) -> u64 {
        self.start_ns + self.service_ns
    }

    fn complete_ns(&self) -> u64 {
        self.end_ns().max(self.bus_done_ns)
    }
}

/// The per-channel/per-die command scheduler. See the [module
/// docs](self) for the model.
#[derive(Debug, Clone)]
pub struct CmdScheduler {
    mode: SchedMode,
    /// Device clock: latest host arrival time, ns (monotone).
    now_ns: u64,
    submit_seq: u64,
    /// Queued windows per die, in execution order.
    dies: Vec<VecDeque<Window>>,
    /// End of the last *finalized* window per die.
    die_horizon_ns: Vec<u64>,
    /// Channel-bus free time (the bus is seized in admission order).
    bus_free_ns: Vec<u64>,
    /// Busy integrals, maintained independently of `NandStats` as the
    /// differential check against the legacy accounting.
    die_busy_ns: Vec<u64>,
    bus_busy_ns: Vec<u64>,
    queue_depth: usize,
    /// Completion estimates of the last `queue_depth` admissions.
    recent: VecDeque<u64>,
    reads_promoted: u64,
    read_hist: LatencyHistogram,
    program_hist: LatencyHistogram,
    erase_hist: LatencyHistogram,
    total_hist: LatencyHistogram,
    capture: Option<Vec<CmdRecord>>,
}

impl CmdScheduler {
    /// A scheduler over `dies` dies and `channels` channel buses.
    ///
    /// # Panics
    ///
    /// Panics if any dimension or the queue depth is zero.
    pub fn new(
        dies: usize,
        channels: usize,
        mode: SchedMode,
        queue_depth: usize,
        capture: bool,
    ) -> Self {
        assert!(
            dies >= 1 && channels >= 1,
            "scheduler needs at least one die and channel"
        );
        assert!(queue_depth >= 1, "queue depth is at least one");
        CmdScheduler {
            mode,
            now_ns: 0,
            submit_seq: 0,
            dies: vec![VecDeque::new(); dies],
            die_horizon_ns: vec![0; dies],
            bus_free_ns: vec![0; channels],
            die_busy_ns: vec![0; dies],
            bus_busy_ns: vec![0; channels],
            queue_depth,
            recent: VecDeque::new(),
            reads_promoted: 0,
            read_hist: LatencyHistogram::new(),
            program_hist: LatencyHistogram::new(),
            erase_hist: LatencyHistogram::new(),
            total_hist: LatencyHistogram::new(),
            capture: capture.then(Vec::new),
        }
    }

    /// The timing model in effect.
    pub fn mode(&self) -> SchedMode {
        self.mode
    }

    /// Advances the device clock (monotone; earlier instants are clamped)
    /// and finalizes every window whose service started strictly before the
    /// new instant — a started window can no longer be displaced by a
    /// promoted read. (Strictly: a window starting exactly *now* is still
    /// fair game for a read arriving now.)
    pub fn set_now(&mut self, now_ns: u64) {
        if now_ns > self.now_ns {
            self.now_ns = now_ns;
        }
        for die in 0..self.dies.len() {
            self.purge_started(die);
        }
    }

    fn purge_started(&mut self, die: usize) {
        while let Some(w) = self.dies[die].front() {
            if w.start_ns < self.now_ns {
                let w = self.dies[die].pop_front().expect("front exists");
                self.finalize(die, w);
            } else {
                break;
            }
        }
    }

    fn finalize(&mut self, die: usize, w: Window) {
        let complete = w.complete_ns();
        let latency = complete - w.arrival_ns;
        match w.kind {
            FaultKind::Read => self.read_hist.record(latency),
            FaultKind::Program => self.program_hist.record(latency),
            FaultKind::Erase => self.erase_hist.record(latency),
        }
        self.total_hist.record(latency);
        self.die_horizon_ns[die] = self.die_horizon_ns[die].max(w.end_ns());
        if let Some(log) = self.capture.as_mut() {
            log.push(CmdRecord {
                kind: w.kind,
                page: w.page,
                block: w.block,
                die,
                submit: w.submit,
                arrival_ns: w.arrival_ns,
                start_ns: w.start_ns,
                complete_ns: complete,
            });
        }
    }

    /// Admits one successful command: schedules it on `die`/`channel`,
    /// charges the busy integrals, and returns its estimated completion
    /// time (queued mutations may still slip if a later read is promoted
    /// past them; the finalized latency sample accounts for that).
    ///
    /// `page` is the flat physical page index (`u64::MAX` for erases),
    /// `block` the flat block index — the identities the dependency guard
    /// keys on. `service_ns` is array time, `bus_ns` channel-transfer time.
    /// (The argument list mirrors the command descriptor one-to-one; a
    /// builder would only obscure the single call site in `NandDevice`.)
    #[allow(clippy::too_many_arguments)]
    pub fn admit(
        &mut self,
        kind: FaultKind,
        die: usize,
        channel: usize,
        page: u64,
        block: u64,
        service_ns: u64,
        bus_ns: u64,
    ) -> u64 {
        self.die_busy_ns[die] += service_ns;
        self.bus_busy_ns[channel] += bus_ns;
        let submit = self.submit_seq;
        self.submit_seq += 1;

        // Closed-loop host: with `queue_depth` commands outstanding, the
        // next one cannot arrive before the oldest of them completed.
        let mut arrival_ns = self.now_ns;
        if self.recent.len() >= self.queue_depth {
            if let Some(&oldest) = self.recent.front() {
                arrival_ns = arrival_ns.max(oldest);
            }
        }
        self.purge_started(die);

        // The channel bus is seized in admission order.
        let bus_done_ns = if bus_ns == 0 {
            0
        } else {
            let done = self.bus_free_ns[channel].max(arrival_ns) + bus_ns;
            self.bus_free_ns[channel] = done;
            done
        };

        let mut w = Window {
            kind,
            page,
            block,
            submit,
            arrival_ns,
            start_ns: 0,
            service_ns,
            bus_done_ns,
        };

        let queue = &mut self.dies[die];
        let ins = if self.mode == SchedMode::OutOfOrder && kind == FaultKind::Read {
            // A read may jump queued windows, but never one that already
            // started by its arrival, never another read, and never a
            // program to the same page or an erase to its block.
            let mut ins = 0;
            for (i, q) in queue.iter().enumerate() {
                let blocking = q.start_ns < arrival_ns
                    || match q.kind {
                        FaultKind::Read => true,
                        FaultKind::Program => q.page == page,
                        FaultKind::Erase => q.block == block,
                    };
                if blocking {
                    ins = i + 1;
                }
            }
            ins
        } else {
            queue.len()
        };
        if ins < queue.len() {
            self.reads_promoted += 1;
        }

        let mut prev_end = if ins == 0 {
            self.die_horizon_ns[die]
        } else {
            queue[ins - 1].end_ns()
        };
        w.start_ns = w.arrival_ns.max(prev_end);
        let complete = w.complete_ns();
        queue.insert(ins, w);
        // Re-chain everything the insertion displaced.
        prev_end = queue[ins].end_ns();
        for q in queue.iter_mut().skip(ins + 1) {
            q.start_ns = q.arrival_ns.max(prev_end);
            prev_end = q.end_ns();
        }

        self.recent.push_back(complete);
        while self.recent.len() > self.queue_depth {
            self.recent.pop_front();
        }
        while self.dies[die].len() > MAX_WINDOWS_PER_DIE {
            let w = self.dies[die]
                .pop_front()
                .expect("over-cap queue is non-empty");
            self.finalize(die, w);
        }
        complete
    }

    /// Finalizes every queued window (end of run / explicit sync). The
    /// device clock and busy integrals are untouched.
    pub fn flush(&mut self) {
        for die in 0..self.dies.len() {
            while let Some(w) = self.dies[die].pop_front() {
                self.finalize(die, w);
            }
        }
    }

    /// Per-kind latency percentiles over every *finalized* command. Call
    /// [`flush`](Self::flush) first to include still-queued windows.
    pub fn snapshot(&self) -> LatencySnapshot {
        LatencySnapshot {
            read: KindLatency::from_histogram(&self.read_hist),
            program: KindLatency::from_histogram(&self.program_hist),
            erase: KindLatency::from_histogram(&self.erase_hist),
            total: KindLatency::from_histogram(&self.total_hist),
        }
    }

    /// Per-die busy integrals (pure service time), ns.
    pub fn die_busy_ns(&self) -> &[u64] {
        &self.die_busy_ns
    }

    /// Per-channel bus busy integrals, ns.
    pub fn bus_busy_ns(&self) -> &[u64] {
        &self.bus_busy_ns
    }

    /// Busy-integral makespan: the most loaded die or channel bus. Equal by
    /// construction to the legacy `parallel_busy_ns` estimate (both sum
    /// pure service time), which the differential oracle asserts.
    pub fn makespan_ns(&self) -> u64 {
        let die = self.die_busy_ns.iter().copied().max().unwrap_or(0);
        let bus = self.bus_busy_ns.iter().copied().max().unwrap_or(0);
        die.max(bus)
    }

    /// Queue-aware completion horizon: when the last currently known
    /// command finishes. Unlike [`makespan_ns`](Self::makespan_ns) this
    /// includes idle gaps between arrivals.
    pub fn completion_horizon_ns(&self) -> u64 {
        let mut horizon = self.bus_free_ns.iter().copied().max().unwrap_or(0);
        for (die, queue) in self.dies.iter().enumerate() {
            let end = queue
                .back()
                .map_or(self.die_horizon_ns[die], |w| w.end_ns());
            horizon = horizon.max(end);
        }
        horizon
    }

    /// How many reads were promoted past at least one queued mutation.
    pub fn reads_promoted(&self) -> u64 {
        self.reads_promoted
    }

    /// Commands currently queued (admitted but not finalized).
    pub fn queued(&self) -> usize {
        self.dies.iter().map(VecDeque::len).sum()
    }

    /// Drains the capture log (empty unless capture was enabled at
    /// construction). Records appear in finalization order; sort by
    /// `submit` to recover issue order.
    pub fn take_captured(&mut self) -> Vec<CmdRecord> {
        self.capture
            .as_mut()
            .map(std::mem::take)
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const READ_NS: u64 = 50_000;
    const PROG_NS: u64 = 500_000;
    const ERASE_NS: u64 = 3_000_000;
    const BUS_NS: u64 = 30_000;

    fn sched(mode: SchedMode) -> CmdScheduler {
        CmdScheduler::new(4, 2, mode, 1024, true)
    }

    #[test]
    fn in_order_read_waits_behind_program() {
        let mut s = sched(SchedMode::InOrder);
        s.admit(FaultKind::Program, 0, 0, 1, 0, PROG_NS, BUS_NS);
        let done = s.admit(FaultKind::Read, 0, 0, 2, 0, READ_NS, BUS_NS);
        assert_eq!(done, PROG_NS + READ_NS, "read starts when the program ends");
        s.flush();
        let snap = s.snapshot();
        assert_eq!(snap.read.count, 1);
        assert_eq!(snap.read.max_ns, PROG_NS + READ_NS);
        assert_eq!(s.reads_promoted(), 0);
    }

    #[test]
    fn out_of_order_read_overtakes_unrelated_program() {
        let mut s = sched(SchedMode::OutOfOrder);
        s.admit(FaultKind::Program, 0, 0, 1, 0, PROG_NS, BUS_NS);
        let done = s.admit(FaultKind::Read, 0, 0, 2, 0, READ_NS, BUS_NS);
        // Die service finishes at READ_NS; the bus (seized in admission
        // order) finishes at 2×BUS_NS, well before the program would end.
        assert_eq!(done, READ_NS.max(2 * BUS_NS));
        assert!(done < PROG_NS);
        assert_eq!(s.reads_promoted(), 1);
        s.flush();
        let snap = s.snapshot();
        // The displaced program now ends at READ_NS + PROG_NS.
        assert_eq!(snap.program.max_ns, READ_NS + PROG_NS);
    }

    #[test]
    fn read_never_overtakes_program_to_same_page() {
        let mut s = sched(SchedMode::OutOfOrder);
        s.admit(FaultKind::Program, 0, 0, 7, 0, PROG_NS, BUS_NS);
        let done = s.admit(FaultKind::Read, 0, 0, 7, 0, READ_NS, BUS_NS);
        assert_eq!(done, PROG_NS + READ_NS, "same-page read must wait");
        assert_eq!(s.reads_promoted(), 0);
    }

    #[test]
    fn read_never_overtakes_erase_of_its_block() {
        let mut s = sched(SchedMode::OutOfOrder);
        s.admit(FaultKind::Erase, 0, 0, u64::MAX, 3, ERASE_NS, 0);
        let same = s.admit(FaultKind::Read, 0, 0, 48, 3, READ_NS, BUS_NS);
        assert_eq!(same, ERASE_NS + READ_NS, "read of the erased block waits");
        let mut s = sched(SchedMode::OutOfOrder);
        s.admit(FaultKind::Erase, 0, 0, u64::MAX, 3, ERASE_NS, 0);
        let other = s.admit(FaultKind::Read, 0, 0, 64, 4, READ_NS, BUS_NS);
        assert!(
            other < ERASE_NS,
            "read of another block overtakes the erase"
        );
    }

    #[test]
    fn reads_never_pass_reads() {
        let mut s = sched(SchedMode::OutOfOrder);
        s.admit(FaultKind::Program, 0, 0, 1, 0, PROG_NS, BUS_NS);
        s.admit(FaultKind::Read, 0, 0, 2, 0, READ_NS, BUS_NS);
        s.admit(FaultKind::Read, 0, 0, 3, 0, READ_NS, BUS_NS);
        s.flush();
        let rec = s.take_captured();
        let r2 = rec.iter().find(|r| r.page == 2).unwrap();
        let r3 = rec.iter().find(|r| r.page == 3).unwrap();
        assert!(
            r3.start_ns >= r2.start_ns,
            "later read starts after earlier read"
        );
    }

    #[test]
    fn busy_integrals_accumulate_service_time_only() {
        let mut s = sched(SchedMode::OutOfOrder);
        s.admit(FaultKind::Program, 0, 0, 1, 0, PROG_NS, BUS_NS);
        s.admit(FaultKind::Read, 1, 1, 100, 6, READ_NS, BUS_NS);
        s.admit(FaultKind::Erase, 0, 0, u64::MAX, 0, ERASE_NS, 0);
        assert_eq!(s.die_busy_ns(), &[PROG_NS + ERASE_NS, READ_NS, 0, 0]);
        assert_eq!(s.bus_busy_ns(), &[BUS_NS, BUS_NS]);
        assert_eq!(s.makespan_ns(), PROG_NS + ERASE_NS);
        assert!(s.completion_horizon_ns() >= s.makespan_ns());
    }

    #[test]
    fn set_now_finalizes_started_windows() {
        let mut s = sched(SchedMode::OutOfOrder);
        s.admit(FaultKind::Read, 0, 0, 1, 0, READ_NS, BUS_NS);
        assert_eq!(s.queued(), 1);
        s.set_now(1); // the read started at 0 — it can no longer be displaced
        assert_eq!(s.queued(), 0);
        assert_eq!(s.snapshot().read.count, 1);
    }

    #[test]
    fn clock_is_monotone() {
        let mut s = sched(SchedMode::OutOfOrder);
        s.set_now(1_000_000);
        s.set_now(400); // clamped
        let done = s.admit(FaultKind::Read, 0, 0, 1, 0, READ_NS, 0);
        assert_eq!(done, 1_000_000 + READ_NS);
    }

    #[test]
    fn queue_depth_throttle_bounds_latency() {
        // Open loop: 64 programs arrive at t=0 on one die; the last one
        // waits for all predecessors.
        let mut open = CmdScheduler::new(1, 1, SchedMode::InOrder, 1024, false);
        for i in 0..64 {
            open.admit(FaultKind::Program, 0, 0, i, 0, PROG_NS, BUS_NS);
        }
        open.flush();
        let open_p99 = open.snapshot().program.p99_ns;
        // Closed loop at QD 2: arrival is pushed to completion of the
        // command two back, so queueing delay stays ~bounded.
        let mut closed = CmdScheduler::new(1, 1, SchedMode::InOrder, 2, false);
        for i in 0..64 {
            closed.admit(FaultKind::Program, 0, 0, i, 0, PROG_NS, BUS_NS);
        }
        closed.flush();
        let closed_p99 = closed.snapshot().program.p99_ns;
        assert!(
            closed_p99 < open_p99,
            "closed-loop p99 {closed_p99} should be below open-loop {open_p99}"
        );
        assert!(closed_p99 <= 3 * PROG_NS);
    }

    #[test]
    fn per_die_queue_is_bounded() {
        let mut s = CmdScheduler::new(1, 1, SchedMode::InOrder, 100_000, false);
        for i in 0..10 * MAX_WINDOWS_PER_DIE as u64 {
            s.admit(FaultKind::Program, 0, 0, i, 0, PROG_NS, 0);
        }
        assert!(s.queued() <= MAX_WINDOWS_PER_DIE);
        s.flush();
        assert_eq!(s.snapshot().program.count, 10 * MAX_WINDOWS_PER_DIE as u64);
    }

    #[test]
    fn capture_preserves_submit_order_metadata() {
        let mut s = sched(SchedMode::OutOfOrder);
        s.admit(FaultKind::Program, 0, 0, 1, 0, PROG_NS, BUS_NS);
        s.admit(FaultKind::Read, 0, 0, 2, 0, READ_NS, BUS_NS);
        s.flush();
        let mut rec = s.take_captured();
        assert_eq!(rec.len(), 2);
        rec.sort_by_key(|r| r.submit);
        assert_eq!(rec[0].kind, FaultKind::Program);
        assert_eq!(rec[1].kind, FaultKind::Read);
        // The promoted read starts before the program it overtook.
        assert!(rec[1].start_ns < rec[0].start_ns);
        assert!(s.take_captured().is_empty(), "capture log drains");
    }

    #[test]
    fn legacy_mode_is_inert_estimation() {
        // Legacy mode still exists as an enum value the device gates on;
        // the scheduler itself behaves identically if driven — the device
        // simply never admits in legacy mode.
        assert_eq!(SchedMode::default(), SchedMode::OutOfOrder);
        assert_eq!(SchedMode::Legacy.to_string(), "legacy");
        assert_eq!(SchedMode::InOrder.name(), "in-order");
    }
}
