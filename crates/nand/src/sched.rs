//! Per-channel/per-die NAND command scheduler.
//!
//! The legacy timing model charges every successful operation to a per-die
//! and per-channel *busy integral* and reports the makespan `max(die, bus)` —
//! an aggregate estimate with no notion of a queue, so it cannot say what
//! latency any single command observed. This module adds a queueing
//! simulator on top of the same integrals:
//!
//! - every command *arrives* at the device clock (`set_now`, driven by the
//!   simulated trace time), waits for its die and its channel bus, and
//!   *completes* at `max(die done, bus done)`;
//! - dies execute their queue in order, back to back; the channel bus is a
//!   second, independently seized resource (transfer and array time are not
//!   serialized against each other, matching the decoupled busy-integral
//!   accounting — the scheduler's busy makespan therefore equals the legacy
//!   estimate exactly, which debug builds assert);
//! - in [`SchedMode::OutOfOrder`] a read may be promoted ahead of *queued*
//!   (not yet started) programs and erases on its die. Reads never pass
//!   reads, mutations never pass anything, and a read never passes a
//!   program to the same page or an erase to the same block — the
//!   dependencies that would change observable data;
//! - completed commands feed per-kind latency histograms
//!   ([`crate::LatencySnapshot`]), the per-request figure a production
//!   drive lives by.
//!
//! A closed-loop queue-depth throttle models a host that keeps at most
//! `queue_depth` commands in flight: when the ring is full, the next
//! command's arrival is pushed to the completion of the command issued
//! `queue_depth` ago. Without it, a trace replayed faster than the device
//! drains would grow queues (and reported latency) without bound.
//!
//! Three extensions serve tail-latency work:
//!
//! - **Erase-suspend/resume** ([`CmdScheduler::with_erase_suspend`]): an
//!   out-of-order read — or a *host* program — arriving while an erase is
//!   mid-pulse on its die may suspend it (never an erase of the command's
//!   own block). The erase keeps the progress it made, pays a modeled
//!   `resume_ns` penalty on top of its remaining work, and resumes behind
//!   the preempting command; host programs may also slot in front of the
//!   still-queued remainder. Every preemption (mid-pulse or queued) counts
//!   against the same per-erase `max_suspends` cap, so a background erase
//!   cannot starve under sustained foreground traffic. GC programs never
//!   preempt — they are the background. The penalty joins the die busy
//!   integral (`NandDevice` mirrors it into `NandStats`, so the makespan
//!   differential assert keeps holding).
//! - **Host/GC attribution** ([`CmdScheduler::set_gc_context`]): commands
//!   admitted while the GC context flag is set land in the combined
//!   histograms only; [`CmdScheduler::host_snapshot`] reports the
//!   foreground-only distribution a host actually observes, which is the
//!   figure steady-state benchmarks gate on.
//! - **Firmware stall** ([`CmdScheduler::stall_host_until`]): a blocking
//!   GC drain occupies the (single-threaded) FTL firmware, not just the
//!   victim's die — no host command is serviced until the drain lands.
//!   The FTL raises the stall horizon to the drain's completion
//!   ([`CmdScheduler::gc_horizon_ns`]); host commands submitted earlier
//!   dispatch at the horizon while their latency anchor stays at
//!   submission, so the stall is fully host-visible. The incremental GC
//!   engine never raises the horizon — interleaving bounded steps between
//!   host commands is exactly its point.
//!
//! The scheduler is *timing only*: page contents, OOB records and error
//! results are applied synchronously at submit, in submission order, so
//! data-path behavior (and the crash sweep's acked-prefix durability
//! contract) is byte-identical across all three modes.

use crate::fault::FaultKind;
use crate::latency::{KindLatency, LatencyHistogram, LatencySnapshot};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Safety valve: windows force-finalized beyond this per-die queue length.
/// Bounds scheduler memory under open-loop overload; finalizing early only
/// freezes a latency sample that could otherwise still grow.
const MAX_WINDOWS_PER_DIE: usize = 256;

/// Which timing model the device runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum SchedMode {
    /// Busy-integral estimate only (the pre-scheduler model): no command
    /// queue, no per-command timestamps, no latency percentiles. Kept as
    /// the differential baseline.
    Legacy,
    /// Full command queue, strict FIFO per die.
    InOrder,
    /// Full command queue; reads may overtake queued programs/erases on
    /// their die (never same-page/same-block dependencies, never other
    /// reads). The default.
    #[default]
    OutOfOrder,
}

impl SchedMode {
    /// Display name for reports.
    pub fn name(self) -> &'static str {
        match self {
            SchedMode::Legacy => "legacy",
            SchedMode::InOrder => "in-order",
            SchedMode::OutOfOrder => "out-of-order",
        }
    }
}

impl std::fmt::Display for SchedMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One finalized command, emitted when capture is enabled
/// (`NandConfig::capture_commands`). The ordering proptests use these to
/// prove out-of-order issue never reorders a same-page read after its
/// program or a same-block read after its erase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CmdRecord {
    /// Command kind.
    pub kind: FaultKind,
    /// Flat physical page index (`u64::MAX` for erases).
    pub page: u64,
    /// Flat physical block index.
    pub block: u64,
    /// Die the command executed on.
    pub die: usize,
    /// Global submission sequence number (issue order).
    pub submit: u64,
    /// Host submission instant, ns of simulated time (dispatch may slip
    /// later under a firmware stall; latency is measured from here).
    pub arrival_ns: u64,
    /// Die service start, ns.
    pub start_ns: u64,
    /// Completion (`max(die done, bus done)`), ns.
    pub complete_ns: u64,
}

/// A queued-but-unfinalized command on one die.
#[derive(Debug, Clone, Copy)]
struct Window {
    kind: FaultKind,
    page: u64,
    block: u64,
    submit: u64,
    /// Host-visible submission instant — the latency anchor. Equal to
    /// `arrival_ns` unless a firmware stall delayed dispatch.
    submitted_ns: u64,
    arrival_ns: u64,
    start_ns: u64,
    service_ns: u64,
    /// Channel-bus completion, fixed at admission (the bus is seized in
    /// admission order); zero when the command moves no data on the bus.
    bus_done_ns: u64,
    /// How many times this window (an erase) has been suspended.
    suspends: u32,
    /// Admitted outside the GC context — counts toward the host-only
    /// latency histograms.
    host: bool,
}

impl Window {
    fn end_ns(&self) -> u64 {
        self.start_ns + self.service_ns
    }

    fn complete_ns(&self) -> u64 {
        self.end_ns().max(self.bus_done_ns)
    }
}

/// The per-channel/per-die command scheduler. See the [module
/// docs](self) for the model.
#[derive(Debug, Clone)]
pub struct CmdScheduler {
    mode: SchedMode,
    /// Device clock: latest host arrival time, ns (monotone).
    now_ns: u64,
    submit_seq: u64,
    /// Queued windows per die, in execution order.
    dies: Vec<VecDeque<Window>>,
    /// End of the last *finalized* window per die.
    die_horizon_ns: Vec<u64>,
    /// Channel-bus free time (the bus is seized in admission order).
    bus_free_ns: Vec<u64>,
    /// Busy integrals, maintained independently of `NandStats` as the
    /// differential check against the legacy accounting.
    die_busy_ns: Vec<u64>,
    bus_busy_ns: Vec<u64>,
    queue_depth: usize,
    /// Completion estimates of the last `queue_depth` admissions.
    recent: VecDeque<u64>,
    reads_promoted: u64,
    /// Erase-suspend model: `(resume_penalty_ns, max_suspends_per_erase)`;
    /// `None` disables suspension entirely (the default).
    erase_suspend: Option<(u64, u32)>,
    erases_suspended: u64,
    suspend_overhead_ns: u64,
    /// Commands admitted while set are attributed to GC, not the host.
    ctx_gc: bool,
    /// Latest completion among GC-context admissions (suspend extensions
    /// excluded — recorded at admission).
    gc_horizon_ns: u64,
    /// Firmware stall: host commands are not dispatched before this
    /// instant (their latency anchor stays at submission, so the stall is
    /// host-visible). A blocking GC drain sets it to the drain's horizon.
    host_stall_until_ns: u64,
    gc_stalls: u64,
    gc_stall_ns: u64,
    read_hist: LatencyHistogram,
    program_hist: LatencyHistogram,
    erase_hist: LatencyHistogram,
    total_hist: LatencyHistogram,
    host_read_hist: LatencyHistogram,
    host_program_hist: LatencyHistogram,
    host_erase_hist: LatencyHistogram,
    host_total_hist: LatencyHistogram,
    capture: Option<Vec<CmdRecord>>,
}

impl CmdScheduler {
    /// A scheduler over `dies` dies and `channels` channel buses.
    ///
    /// # Panics
    ///
    /// Panics if any dimension or the queue depth is zero.
    pub fn new(
        dies: usize,
        channels: usize,
        mode: SchedMode,
        queue_depth: usize,
        capture: bool,
    ) -> Self {
        assert!(
            dies >= 1 && channels >= 1,
            "scheduler needs at least one die and channel"
        );
        assert!(queue_depth >= 1, "queue depth is at least one");
        CmdScheduler {
            mode,
            now_ns: 0,
            submit_seq: 0,
            dies: vec![VecDeque::new(); dies],
            die_horizon_ns: vec![0; dies],
            bus_free_ns: vec![0; channels],
            die_busy_ns: vec![0; dies],
            bus_busy_ns: vec![0; channels],
            queue_depth,
            recent: VecDeque::new(),
            reads_promoted: 0,
            erase_suspend: None,
            erases_suspended: 0,
            suspend_overhead_ns: 0,
            ctx_gc: false,
            gc_horizon_ns: 0,
            host_stall_until_ns: 0,
            gc_stalls: 0,
            gc_stall_ns: 0,
            read_hist: LatencyHistogram::new(),
            program_hist: LatencyHistogram::new(),
            erase_hist: LatencyHistogram::new(),
            total_hist: LatencyHistogram::new(),
            host_read_hist: LatencyHistogram::new(),
            host_program_hist: LatencyHistogram::new(),
            host_erase_hist: LatencyHistogram::new(),
            host_total_hist: LatencyHistogram::new(),
            capture: capture.then(Vec::new),
        }
    }

    /// Enables erase-suspend: an out-of-order read or *host* program may
    /// interrupt an in-flight erase on its die (never one of its own
    /// block) at a `resume_ns` penalty; host programs may also slot in
    /// front of the queued remainder. Each erase absorbs at most
    /// `max_suspends` preemptions before it becomes blocking again.
    /// Only effective in [`SchedMode::OutOfOrder`].
    pub fn with_erase_suspend(mut self, resume_ns: u64, max_suspends: u32) -> Self {
        self.erase_suspend = Some((resume_ns, max_suspends));
        self
    }

    /// The timing model in effect.
    pub fn mode(&self) -> SchedMode {
        self.mode
    }

    /// Flags subsequent admissions as GC-internal (true) or host-issued
    /// (false). GC commands are excluded from the host-only histograms.
    pub fn set_gc_context(&mut self, gc: bool) {
        self.ctx_gc = gc;
    }

    /// Advances the device clock (monotone; earlier instants are clamped)
    /// and finalizes every window whose service *completed* by the new
    /// instant. Started-but-unfinished windows stay queued: a promoted
    /// read can no longer displace them (the insertion scan treats a
    /// started window as blocking), but an in-flight erase must remain
    /// visible so a read arriving mid-pulse can suspend it — finalizing
    /// at start would silently retire every suspendable erase before the
    /// suspend check could ever see one.
    pub fn set_now(&mut self, now_ns: u64) {
        if now_ns > self.now_ns {
            self.now_ns = now_ns;
        }
        for die in 0..self.dies.len() {
            self.purge_started(die);
        }
    }

    fn purge_started(&mut self, die: usize) {
        while let Some(w) = self.dies[die].front() {
            if w.end_ns() <= self.now_ns {
                let w = self.dies[die].pop_front().expect("front exists");
                self.finalize(die, w);
            } else {
                break;
            }
        }
    }

    fn finalize(&mut self, die: usize, w: Window) {
        let complete = w.complete_ns();
        // Latency is anchored at host submission, so a firmware stall
        // between submission and dispatch stays host-visible.
        let latency = complete - w.submitted_ns;
        match w.kind {
            FaultKind::Read => self.read_hist.record(latency),
            FaultKind::Program => self.program_hist.record(latency),
            FaultKind::Erase => self.erase_hist.record(latency),
        }
        self.total_hist.record(latency);
        if w.host {
            match w.kind {
                FaultKind::Read => self.host_read_hist.record(latency),
                FaultKind::Program => self.host_program_hist.record(latency),
                FaultKind::Erase => self.host_erase_hist.record(latency),
            }
            self.host_total_hist.record(latency);
        }
        self.die_horizon_ns[die] = self.die_horizon_ns[die].max(w.end_ns());
        if let Some(log) = self.capture.as_mut() {
            log.push(CmdRecord {
                kind: w.kind,
                page: w.page,
                block: w.block,
                die,
                submit: w.submit,
                arrival_ns: w.submitted_ns,
                start_ns: w.start_ns,
                complete_ns: complete,
            });
        }
    }

    /// Admits one successful command: schedules it on `die`/`channel`,
    /// charges the busy integrals, and returns its estimated completion
    /// time (queued mutations may still slip if a later read is promoted
    /// past them; the finalized latency sample accounts for that).
    ///
    /// `page` is the flat physical page index (`u64::MAX` for erases),
    /// `block` the flat block index — the identities the dependency guard
    /// keys on. `service_ns` is array time, `bus_ns` channel-transfer time.
    /// (The argument list mirrors the command descriptor one-to-one; a
    /// builder would only obscure the single call site in `NandDevice`.)
    #[allow(clippy::too_many_arguments)]
    pub fn admit(
        &mut self,
        kind: FaultKind,
        die: usize,
        channel: usize,
        page: u64,
        block: u64,
        service_ns: u64,
        bus_ns: u64,
    ) -> u64 {
        self.die_busy_ns[die] += service_ns;
        self.bus_busy_ns[channel] += bus_ns;
        let submit = self.submit_seq;
        self.submit_seq += 1;

        // Closed-loop host: with `queue_depth` commands outstanding, the
        // next one cannot arrive before the oldest of them completed.
        let mut arrival_ns = self.now_ns;
        if self.recent.len() >= self.queue_depth {
            if let Some(&oldest) = self.recent.front() {
                arrival_ns = arrival_ns.max(oldest);
            }
        }
        // Firmware stall: a host command submitted during a blocking GC
        // drain waits for the firmware, not a die — its dispatch slips to
        // the stall horizon while its latency anchor stays at submission.
        let submitted_ns = arrival_ns;
        if !self.ctx_gc && self.host_stall_until_ns > arrival_ns {
            self.gc_stalls += 1;
            self.gc_stall_ns += self.host_stall_until_ns - arrival_ns;
            arrival_ns = self.host_stall_until_ns;
        }
        self.purge_started(die);

        // The channel bus is seized in admission order.
        let bus_done_ns = if bus_ns == 0 {
            0
        } else {
            let done = self.bus_free_ns[channel].max(arrival_ns) + bus_ns;
            self.bus_free_ns[channel] = done;
            done
        };

        let mut w = Window {
            kind,
            page,
            block,
            submit,
            submitted_ns,
            arrival_ns,
            start_ns: 0,
            service_ns,
            bus_done_ns,
            suspends: 0,
            host: !self.ctx_gc,
        };

        let suspend_cfg = self.erase_suspend;
        let program_suspend_cfg =
            if self.mode == SchedMode::OutOfOrder && kind == FaultKind::Program && !self.ctx_gc {
                suspend_cfg
            } else {
                None
            };
        let queue = &mut self.dies[die];
        let ins = if let Some((resume_ns, max_suspends)) = program_suspend_cfg {
            // Erase-suspend for host programs: a foreground program stays
            // in order behind every read and program, but may preempt an
            // erase of another block — mid-pulse (suspend, resume penalty)
            // or still queued (slot in front of the remainder). Each
            // preemption spends one of the erase's `max_suspends` tokens,
            // so a background erase bounded-starves at worst.
            let mut ins = 0;
            for (i, q) in queue.iter().enumerate() {
                let passable = q.kind == FaultKind::Erase
                    && q.block != block
                    && q.suspends < max_suspends
                    && q.end_ns() > arrival_ns;
                if !passable {
                    ins = i + 1;
                }
            }
            for q in queue.iter_mut().skip(ins) {
                if q.kind == FaultKind::Erase {
                    if q.start_ns < arrival_ns {
                        // Mid-pulse: keep progress, pay the resume penalty.
                        q.service_ns = (q.end_ns() - arrival_ns) + resume_ns;
                        self.erases_suspended += 1;
                        self.suspend_overhead_ns += resume_ns;
                        self.die_busy_ns[die] += resume_ns;
                    }
                    q.suspends += 1;
                }
            }
            ins
        } else if self.mode == SchedMode::OutOfOrder && kind == FaultKind::Read {
            // A read may jump queued windows, but never one that already
            // started by its arrival, never another read, and never a
            // program to the same page or an erase to its block. With
            // erase-suspend enabled, an *in-flight* erase of another block
            // straddling this arrival is the one started window that does
            // not block: the read preempts it mid-pulse.
            let mut ins = 0;
            let mut suspendable = None;
            for (i, q) in queue.iter().enumerate() {
                if let Some((_, max_suspends)) = suspend_cfg {
                    if q.kind == FaultKind::Erase
                        && q.start_ns < arrival_ns
                        && q.end_ns() > arrival_ns
                        && q.block != block
                        && q.suspends < max_suspends
                    {
                        suspendable = Some(i);
                        continue;
                    }
                }
                let blocking = q.start_ns < arrival_ns
                    || match q.kind {
                        FaultKind::Read => true,
                        FaultKind::Program => q.page == page,
                        FaultKind::Erase => q.block == block,
                    };
                if blocking {
                    ins = i + 1;
                    suspendable = None;
                }
            }
            if let Some(i) = suspendable {
                // Suspend: the erase keeps the progress it made before the
                // read arrived, and its remaining pulse plus the resume
                // penalty re-chains behind the read. Arrival is untouched,
                // so its finalized latency absorbs the interruption.
                let (resume_ns, _) = suspend_cfg.expect("suspendable implies enabled");
                let q = &mut queue[i];
                q.service_ns = (q.end_ns() - arrival_ns) + resume_ns;
                q.suspends += 1;
                self.erases_suspended += 1;
                self.suspend_overhead_ns += resume_ns;
                self.die_busy_ns[die] += resume_ns;
                ins = i;
            }
            ins
        } else {
            queue.len()
        };
        if ins < queue.len() && kind == FaultKind::Read {
            self.reads_promoted += 1;
        }

        let mut prev_end = if ins == 0 {
            self.die_horizon_ns[die]
        } else {
            queue[ins - 1].end_ns()
        };
        w.start_ns = w.arrival_ns.max(prev_end);
        let complete = w.complete_ns();
        queue.insert(ins, w);
        // Re-chain everything the insertion displaced.
        prev_end = queue[ins].end_ns();
        for q in queue.iter_mut().skip(ins + 1) {
            q.start_ns = q.arrival_ns.max(prev_end);
            prev_end = q.end_ns();
        }

        if self.ctx_gc {
            self.gc_horizon_ns = self.gc_horizon_ns.max(complete);
        }
        self.recent.push_back(complete);
        while self.recent.len() > self.queue_depth {
            self.recent.pop_front();
        }
        while self.dies[die].len() > MAX_WINDOWS_PER_DIE {
            let w = self.dies[die]
                .pop_front()
                .expect("over-cap queue is non-empty");
            self.finalize(die, w);
        }
        complete
    }

    /// Finalizes every queued window (end of run / explicit sync). The
    /// device clock and busy integrals are untouched.
    pub fn flush(&mut self) {
        for die in 0..self.dies.len() {
            while let Some(w) = self.dies[die].pop_front() {
                self.finalize(die, w);
            }
        }
    }

    /// Per-kind latency percentiles over every *finalized* command. Call
    /// [`flush`](Self::flush) first to include still-queued windows.
    pub fn snapshot(&self) -> LatencySnapshot {
        LatencySnapshot {
            read: KindLatency::from_histogram(&self.read_hist),
            program: KindLatency::from_histogram(&self.program_hist),
            erase: KindLatency::from_histogram(&self.erase_hist),
            total: KindLatency::from_histogram(&self.total_hist),
        }
    }

    /// Latency percentiles over finalized *host-issued* commands only —
    /// admissions made inside the GC context
    /// ([`set_gc_context`](Self::set_gc_context)) are excluded. This is
    /// the foreground distribution steady-state benchmarks gate on.
    pub fn host_snapshot(&self) -> LatencySnapshot {
        LatencySnapshot {
            read: KindLatency::from_histogram(&self.host_read_hist),
            program: KindLatency::from_histogram(&self.host_program_hist),
            erase: KindLatency::from_histogram(&self.host_erase_hist),
            total: KindLatency::from_histogram(&self.host_total_hist),
        }
    }

    /// Per-die busy integrals (pure service time), ns.
    pub fn die_busy_ns(&self) -> &[u64] {
        &self.die_busy_ns
    }

    /// Per-channel bus busy integrals, ns.
    pub fn bus_busy_ns(&self) -> &[u64] {
        &self.bus_busy_ns
    }

    /// Busy-integral makespan: the most loaded die or channel bus. Equal by
    /// construction to the legacy `parallel_busy_ns` estimate (both sum
    /// pure service time), which the differential oracle asserts.
    pub fn makespan_ns(&self) -> u64 {
        let die = self.die_busy_ns.iter().copied().max().unwrap_or(0);
        let bus = self.bus_busy_ns.iter().copied().max().unwrap_or(0);
        die.max(bus)
    }

    /// Queue-aware completion horizon: when the last currently known
    /// command finishes. Unlike [`makespan_ns`](Self::makespan_ns) this
    /// includes idle gaps between arrivals.
    pub fn completion_horizon_ns(&self) -> u64 {
        let mut horizon = self.bus_free_ns.iter().copied().max().unwrap_or(0);
        for (die, queue) in self.dies.iter().enumerate() {
            let end = queue
                .back()
                .map_or(self.die_horizon_ns[die], |w| w.end_ns());
            horizon = horizon.max(end);
        }
        horizon
    }

    /// How many reads were promoted past at least one queued mutation.
    pub fn reads_promoted(&self) -> u64 {
        self.reads_promoted
    }

    /// How many times an in-flight erase was suspended by a read.
    pub fn erases_suspended(&self) -> u64 {
        self.erases_suspended
    }

    /// Total resume-penalty time paid by suspended erases, ns. Already
    /// included in the die busy integrals.
    pub fn suspend_overhead_ns(&self) -> u64 {
        self.suspend_overhead_ns
    }

    /// Latest completion among GC-context admissions — the instant a
    /// just-issued blocking drain fully lands on the arrays.
    pub fn gc_horizon_ns(&self) -> u64 {
        self.gc_horizon_ns
    }

    /// Models the firmware being busy (a blocking GC drain): host
    /// commands submitted before `ns` are not dispatched until then,
    /// and the wait counts toward their host-visible latency. Monotone;
    /// earlier instants are ignored. GC-context admissions are exempt
    /// (they *are* the drain).
    pub fn stall_host_until(&mut self, ns: u64) {
        self.host_stall_until_ns = self.host_stall_until_ns.max(ns);
    }

    /// How many host commands a firmware stall delayed, and the total
    /// submission-to-dispatch time they waited, ns.
    pub fn gc_stall_totals(&self) -> (u64, u64) {
        (self.gc_stalls, self.gc_stall_ns)
    }

    /// Commands currently queued (admitted but not finalized).
    pub fn queued(&self) -> usize {
        self.dies.iter().map(VecDeque::len).sum()
    }

    /// Drains the capture log (empty unless capture was enabled at
    /// construction). Records appear in finalization order; sort by
    /// `submit` to recover issue order.
    pub fn take_captured(&mut self) -> Vec<CmdRecord> {
        self.capture
            .as_mut()
            .map(std::mem::take)
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const READ_NS: u64 = 50_000;
    const PROG_NS: u64 = 500_000;
    const ERASE_NS: u64 = 3_000_000;
    const BUS_NS: u64 = 30_000;

    fn sched(mode: SchedMode) -> CmdScheduler {
        CmdScheduler::new(4, 2, mode, 1024, true)
    }

    #[test]
    fn in_order_read_waits_behind_program() {
        let mut s = sched(SchedMode::InOrder);
        s.admit(FaultKind::Program, 0, 0, 1, 0, PROG_NS, BUS_NS);
        let done = s.admit(FaultKind::Read, 0, 0, 2, 0, READ_NS, BUS_NS);
        assert_eq!(done, PROG_NS + READ_NS, "read starts when the program ends");
        s.flush();
        let snap = s.snapshot();
        assert_eq!(snap.read.count, 1);
        assert_eq!(snap.read.max_ns, PROG_NS + READ_NS);
        assert_eq!(s.reads_promoted(), 0);
    }

    #[test]
    fn out_of_order_read_overtakes_unrelated_program() {
        let mut s = sched(SchedMode::OutOfOrder);
        s.admit(FaultKind::Program, 0, 0, 1, 0, PROG_NS, BUS_NS);
        let done = s.admit(FaultKind::Read, 0, 0, 2, 0, READ_NS, BUS_NS);
        // Die service finishes at READ_NS; the bus (seized in admission
        // order) finishes at 2×BUS_NS, well before the program would end.
        assert_eq!(done, READ_NS.max(2 * BUS_NS));
        assert!(done < PROG_NS);
        assert_eq!(s.reads_promoted(), 1);
        s.flush();
        let snap = s.snapshot();
        // The displaced program now ends at READ_NS + PROG_NS.
        assert_eq!(snap.program.max_ns, READ_NS + PROG_NS);
    }

    #[test]
    fn read_never_overtakes_program_to_same_page() {
        let mut s = sched(SchedMode::OutOfOrder);
        s.admit(FaultKind::Program, 0, 0, 7, 0, PROG_NS, BUS_NS);
        let done = s.admit(FaultKind::Read, 0, 0, 7, 0, READ_NS, BUS_NS);
        assert_eq!(done, PROG_NS + READ_NS, "same-page read must wait");
        assert_eq!(s.reads_promoted(), 0);
    }

    #[test]
    fn read_never_overtakes_erase_of_its_block() {
        let mut s = sched(SchedMode::OutOfOrder);
        s.admit(FaultKind::Erase, 0, 0, u64::MAX, 3, ERASE_NS, 0);
        let same = s.admit(FaultKind::Read, 0, 0, 48, 3, READ_NS, BUS_NS);
        assert_eq!(same, ERASE_NS + READ_NS, "read of the erased block waits");
        let mut s = sched(SchedMode::OutOfOrder);
        s.admit(FaultKind::Erase, 0, 0, u64::MAX, 3, ERASE_NS, 0);
        let other = s.admit(FaultKind::Read, 0, 0, 64, 4, READ_NS, BUS_NS);
        assert!(
            other < ERASE_NS,
            "read of another block overtakes the erase"
        );
    }

    #[test]
    fn reads_never_pass_reads() {
        let mut s = sched(SchedMode::OutOfOrder);
        s.admit(FaultKind::Program, 0, 0, 1, 0, PROG_NS, BUS_NS);
        s.admit(FaultKind::Read, 0, 0, 2, 0, READ_NS, BUS_NS);
        s.admit(FaultKind::Read, 0, 0, 3, 0, READ_NS, BUS_NS);
        s.flush();
        let rec = s.take_captured();
        let r2 = rec.iter().find(|r| r.page == 2).unwrap();
        let r3 = rec.iter().find(|r| r.page == 3).unwrap();
        assert!(
            r3.start_ns >= r2.start_ns,
            "later read starts after earlier read"
        );
    }

    #[test]
    fn busy_integrals_accumulate_service_time_only() {
        let mut s = sched(SchedMode::OutOfOrder);
        s.admit(FaultKind::Program, 0, 0, 1, 0, PROG_NS, BUS_NS);
        s.admit(FaultKind::Read, 1, 1, 100, 6, READ_NS, BUS_NS);
        s.admit(FaultKind::Erase, 0, 0, u64::MAX, 0, ERASE_NS, 0);
        assert_eq!(s.die_busy_ns(), &[PROG_NS + ERASE_NS, READ_NS, 0, 0]);
        assert_eq!(s.bus_busy_ns(), &[BUS_NS, BUS_NS]);
        assert_eq!(s.makespan_ns(), PROG_NS + ERASE_NS);
        assert!(s.completion_horizon_ns() >= s.makespan_ns());
    }

    #[test]
    fn set_now_finalizes_completed_windows_only() {
        let mut s = sched(SchedMode::OutOfOrder);
        s.admit(FaultKind::Read, 0, 0, 1, 0, READ_NS, BUS_NS);
        assert_eq!(s.queued(), 1);
        // Started at 0 but still mid-pulse: it stays queued (an in-flight
        // erase must remain visible to the suspend check).
        s.set_now(1);
        assert_eq!(s.queued(), 1);
        assert_eq!(s.snapshot().read.count, 0);
        // Pulse over: the clock sweep finalizes it.
        s.set_now(BUS_NS + READ_NS + 1);
        assert_eq!(s.queued(), 0);
        assert_eq!(s.snapshot().read.count, 1);
    }

    #[test]
    fn clock_is_monotone() {
        let mut s = sched(SchedMode::OutOfOrder);
        s.set_now(1_000_000);
        s.set_now(400); // clamped
        let done = s.admit(FaultKind::Read, 0, 0, 1, 0, READ_NS, 0);
        assert_eq!(done, 1_000_000 + READ_NS);
    }

    #[test]
    fn queue_depth_throttle_bounds_latency() {
        // Open loop: 64 programs arrive at t=0 on one die; the last one
        // waits for all predecessors.
        let mut open = CmdScheduler::new(1, 1, SchedMode::InOrder, 1024, false);
        for i in 0..64 {
            open.admit(FaultKind::Program, 0, 0, i, 0, PROG_NS, BUS_NS);
        }
        open.flush();
        let open_p99 = open.snapshot().program.p99_ns;
        // Closed loop at QD 2: arrival is pushed to completion of the
        // command two back, so queueing delay stays ~bounded.
        let mut closed = CmdScheduler::new(1, 1, SchedMode::InOrder, 2, false);
        for i in 0..64 {
            closed.admit(FaultKind::Program, 0, 0, i, 0, PROG_NS, BUS_NS);
        }
        closed.flush();
        let closed_p99 = closed.snapshot().program.p99_ns;
        assert!(
            closed_p99 < open_p99,
            "closed-loop p99 {closed_p99} should be below open-loop {open_p99}"
        );
        assert!(closed_p99 <= 3 * PROG_NS);
    }

    #[test]
    fn per_die_queue_is_bounded() {
        let mut s = CmdScheduler::new(1, 1, SchedMode::InOrder, 100_000, false);
        for i in 0..10 * MAX_WINDOWS_PER_DIE as u64 {
            s.admit(FaultKind::Program, 0, 0, i, 0, PROG_NS, 0);
        }
        assert!(s.queued() <= MAX_WINDOWS_PER_DIE);
        s.flush();
        assert_eq!(s.snapshot().program.count, 10 * MAX_WINDOWS_PER_DIE as u64);
    }

    #[test]
    fn capture_preserves_submit_order_metadata() {
        let mut s = sched(SchedMode::OutOfOrder);
        s.admit(FaultKind::Program, 0, 0, 1, 0, PROG_NS, BUS_NS);
        s.admit(FaultKind::Read, 0, 0, 2, 0, READ_NS, BUS_NS);
        s.flush();
        let mut rec = s.take_captured();
        assert_eq!(rec.len(), 2);
        rec.sort_by_key(|r| r.submit);
        assert_eq!(rec[0].kind, FaultKind::Program);
        assert_eq!(rec[1].kind, FaultKind::Read);
        // The promoted read starts before the program it overtook.
        assert!(rec[1].start_ns < rec[0].start_ns);
        assert!(s.take_captured().is_empty(), "capture log drains");
    }

    const RESUME_NS: u64 = 100_000;

    /// QD-2 scheduler with erase-suspend on: the narrow queue depth lets a
    /// read's throttled arrival land *inside* an already-started erase.
    fn suspend_sched(max_suspends: u32) -> CmdScheduler {
        CmdScheduler::new(4, 2, SchedMode::OutOfOrder, 2, false)
            .with_erase_suspend(RESUME_NS, max_suspends)
    }

    /// Lands an erase on die 0 spanning [0, ERASE_NS) and returns the
    /// completion of a read admitted at throttled arrival 1.2 ms — mid-
    /// erase. The unrelated long program on die 1 pins the arrival.
    fn erase_then_midpulse_read(s: &mut CmdScheduler, read_block: u64) -> u64 {
        s.admit(FaultKind::Program, 1, 1, 100, 6, 1_200_000, 0);
        s.admit(FaultKind::Erase, 0, 0, u64::MAX, 3, ERASE_NS, 0);
        // QD 2: arrival = completion of the program = 1_200_000.
        s.admit(FaultKind::Read, 0, 0, 64, read_block, READ_NS, BUS_NS)
    }

    #[test]
    fn read_suspends_in_flight_erase() {
        let mut s = suspend_sched(3);
        let done = erase_then_midpulse_read(&mut s, 4);
        // The read preempts the erase mid-pulse: service 1.2M..1.25M, bus
        // done 1.23M — instead of waiting out the erase until 3.05M.
        assert_eq!(done, 1_250_000);
        assert_eq!(s.erases_suspended(), 1);
        assert_eq!(s.suspend_overhead_ns(), RESUME_NS);
        // Die 0 integral carries the erase + read + resume penalty.
        assert_eq!(s.die_busy_ns()[0], ERASE_NS + READ_NS + RESUME_NS);
        s.flush();
        // The erase resumes behind the read: 1.8 ms of remaining pulse plus
        // the penalty, ending (and its latency sample growing) accordingly.
        assert_eq!(s.snapshot().erase.max_ns, 1_250_000 + 1_800_000 + RESUME_NS);
    }

    #[test]
    fn suspend_count_is_bounded() {
        let mut s = suspend_sched(1);
        let first = erase_then_midpulse_read(&mut s, 4);
        assert_eq!(first, 1_250_000);
        // Second read arrives at 3 ms (throttled to the erase's original
        // completion estimate) while the suspended erase now spans
        // [1.25 ms, 3.15 ms] — but the erase is out of suspend budget, so
        // the read waits for it.
        let second = s.admit(FaultKind::Read, 0, 0, 65, 4, READ_NS, BUS_NS);
        assert_eq!(second, 1_250_000 + 1_800_000 + RESUME_NS + READ_NS);
        assert_eq!(s.erases_suspended(), 1, "budget spent — no second suspend");
    }

    #[test]
    fn read_never_suspends_erase_of_its_block() {
        let mut s = suspend_sched(3);
        let done = erase_then_midpulse_read(&mut s, 3);
        assert_eq!(done, ERASE_NS + READ_NS, "same-block read must wait");
        assert_eq!(s.erases_suspended(), 0);
    }

    #[test]
    fn erase_suspend_is_off_by_default() {
        let mut s = CmdScheduler::new(4, 2, SchedMode::OutOfOrder, 2, false);
        let done = erase_then_midpulse_read(&mut s, 4);
        assert_eq!(done, ERASE_NS + READ_NS);
        assert_eq!(s.erases_suspended(), 0);
        assert_eq!(s.suspend_overhead_ns(), 0);
    }

    /// Same mid-pulse collision as [`erase_then_midpulse_read`], but the
    /// preempting command is a host *program*.
    fn erase_then_midpulse_program(s: &mut CmdScheduler, prog_block: u64) -> u64 {
        s.admit(FaultKind::Program, 1, 1, 100, 6, 1_200_000, 0);
        s.admit(FaultKind::Erase, 0, 0, u64::MAX, 3, ERASE_NS, 0);
        s.admit(FaultKind::Program, 0, 0, 64, prog_block, PROG_NS, BUS_NS)
    }

    #[test]
    fn host_program_suspends_in_flight_erase() {
        let mut s = suspend_sched(3);
        let done = erase_then_midpulse_program(&mut s, 4);
        // The program preempts the erase mid-pulse instead of waiting out
        // the remaining 1.8 ms of pulse.
        assert_eq!(done, 1_200_000 + PROG_NS);
        assert_eq!(s.erases_suspended(), 1);
        assert_eq!(s.suspend_overhead_ns(), RESUME_NS);
        s.flush();
        // The erase resumes behind the program: remainder plus penalty.
        assert_eq!(
            s.snapshot().erase.max_ns,
            1_200_000 + PROG_NS + 1_800_000 + RESUME_NS
        );
    }

    #[test]
    fn gc_program_never_suspends_an_erase() {
        let mut s = suspend_sched(3);
        s.admit(FaultKind::Program, 1, 1, 100, 6, 1_200_000, 0);
        s.admit(FaultKind::Erase, 0, 0, u64::MAX, 3, ERASE_NS, 0);
        s.set_gc_context(true);
        let done = s.admit(FaultKind::Program, 0, 0, 64, 4, PROG_NS, BUS_NS);
        assert_eq!(done, ERASE_NS + PROG_NS, "background program must wait");
        assert_eq!(s.erases_suspended(), 0);
    }

    #[test]
    fn host_program_never_suspends_erase_of_its_block() {
        let mut s = suspend_sched(3);
        let done = erase_then_midpulse_program(&mut s, 3);
        assert_eq!(done, ERASE_NS + PROG_NS, "same-block program must wait");
        assert_eq!(s.erases_suspended(), 0);
    }

    #[test]
    fn program_preemptions_spend_the_suspend_budget() {
        let mut s = suspend_sched(1);
        let first = erase_then_midpulse_program(&mut s, 4);
        assert_eq!(first, 1_200_000 + PROG_NS);
        // The erase remainder is out of suspend tokens: the next host
        // program queues behind it instead of displacing it again.
        let second = s.admit(FaultKind::Program, 0, 0, 65, 4, PROG_NS, BUS_NS);
        assert_eq!(
            second,
            1_200_000 + PROG_NS + 1_800_000 + RESUME_NS + PROG_NS,
            "budget spent — the program waits for the resumed erase"
        );
        assert_eq!(s.erases_suspended(), 1);
    }

    #[test]
    fn gc_context_splits_host_histograms() {
        let mut s = sched(SchedMode::OutOfOrder);
        s.admit(FaultKind::Program, 0, 0, 1, 0, PROG_NS, BUS_NS);
        s.set_gc_context(true);
        s.admit(FaultKind::Program, 1, 1, 17, 1, PROG_NS, BUS_NS);
        s.admit(FaultKind::Erase, 1, 1, u64::MAX, 2, ERASE_NS, 0);
        s.set_gc_context(false);
        s.admit(FaultKind::Read, 0, 0, 2, 0, READ_NS, BUS_NS);
        s.flush();
        let all = s.snapshot();
        let host = s.host_snapshot();
        assert_eq!(all.program.count, 2);
        assert_eq!(all.erase.count, 1);
        assert_eq!(host.program.count, 1, "GC program excluded");
        assert_eq!(host.erase.count, 0, "GC erase excluded");
        assert_eq!(host.read.count, 1);
        assert_eq!(host.total.count, 2);
    }

    #[test]
    fn legacy_mode_is_inert_estimation() {
        // Legacy mode still exists as an enum value the device gates on;
        // the scheduler itself behaves identically if driven — the device
        // simply never admits in legacy mode.
        assert_eq!(SchedMode::default(), SchedMode::OutOfOrder);
        assert_eq!(SchedMode::Legacy.to_string(), "legacy");
        assert_eq!(SchedMode::InOrder.name(), "in-order");
    }
}
