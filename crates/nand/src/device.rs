//! The simulated NAND device.

use crate::block::Block;
use crate::fault::{FaultCheck, FaultKind, FaultPlan};
use crate::latency::LatencySnapshot;
use crate::oob::{OobRecord, OobTag};
use crate::page::PageState;
use crate::sched::{CmdRecord, CmdScheduler, SchedMode};
use crate::stats::NandStats;
use crate::{Geometry, NandError, Pba, Ppa, Result, SimTime};
use bytes::Bytes;

/// Timing and reliability configuration for a [`NandDevice`].
///
/// Defaults follow the paper's cited NAND datasheet (Micron MT29F):
/// 50 µs page read, 500 µs page program, and 3 ms block erase, with a
/// 3000-cycle endurance limit typical of MLC NAND.
#[derive(Debug, Clone)]
pub struct NandConfig {
    geometry: Geometry,
    read_latency_ns: u64,
    program_latency_ns: u64,
    erase_latency_ns: u64,
    /// Page-transfer time over the shared channel bus (serialized among
    /// the chips of one channel).
    bus_transfer_ns: u64,
    endurance: u32,
    sched_mode: SchedMode,
    queue_depth: usize,
    capture_commands: bool,
    erase_suspend: bool,
    erase_resume_ns: u64,
    max_erase_suspends: u32,
}

impl NandConfig {
    /// Configuration with default latencies for `geometry`.
    pub fn new(geometry: Geometry) -> Self {
        NandConfig {
            geometry,
            read_latency_ns: 50_000,
            program_latency_ns: 500_000,
            erase_latency_ns: 3_000_000,
            // ~133 MB/s per channel for a 4 KiB page: the ONFI-class bus
            // of the paper's prototype card, which is what bounds its
            // 1.2 GB/s read throughput across 8 channels.
            bus_transfer_ns: 30_000,
            endurance: 3_000,
            sched_mode: SchedMode::default(),
            // NVMe-class default: one submission queue 32 deep.
            queue_depth: 32,
            capture_commands: false,
            erase_suspend: false,
            // Datasheet-class erase resume overhead: tens of µs to rebuild
            // the erase pulse after a suspend window.
            erase_resume_ns: 50_000,
            max_erase_suspends: 3,
        }
    }

    /// Sets the page-read latency in nanoseconds.
    pub fn read_latency_ns(mut self, ns: u64) -> Self {
        self.read_latency_ns = ns;
        self
    }

    /// Sets the page-program latency in nanoseconds.
    pub fn program_latency_ns(mut self, ns: u64) -> Self {
        self.program_latency_ns = ns;
        self
    }

    /// Sets the block-erase latency in nanoseconds.
    pub fn erase_latency_ns(mut self, ns: u64) -> Self {
        self.erase_latency_ns = ns;
        self
    }

    /// Sets the channel-bus page-transfer time in nanoseconds.
    pub fn bus_transfer_ns(mut self, ns: u64) -> Self {
        self.bus_transfer_ns = ns;
        self
    }

    /// Sets the per-block program/erase endurance limit.
    pub fn endurance(mut self, cycles: u32) -> Self {
        self.endurance = cycles;
        self
    }

    /// The per-block program/erase endurance limit.
    pub fn endurance_limit(&self) -> u32 {
        self.endurance
    }

    /// Selects the timing model: the legacy busy-integral estimate, a
    /// strict in-order command queue, or the out-of-order scheduler
    /// (the default). All three apply data identically; see
    /// [`SchedMode`].
    pub fn scheduler(mut self, mode: SchedMode) -> Self {
        self.sched_mode = mode;
        self
    }

    /// The configured timing model.
    pub fn sched_mode(&self) -> SchedMode {
        self.sched_mode
    }

    /// Sets the closed-loop host queue depth the scheduler models (how
    /// many commands the host keeps in flight before its next arrival
    /// waits for a completion). Default 32.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn queue_depth(mut self, depth: usize) -> Self {
        assert!(depth >= 1, "queue depth is at least one");
        self.queue_depth = depth;
        self
    }

    /// The configured host queue depth.
    pub fn queue_depth_limit(&self) -> usize {
        self.queue_depth
    }

    /// Enables the per-command capture log
    /// (`NandDevice::take_captured_commands`), used by the ordering
    /// proptests. Off by default — the log grows with every command.
    pub fn capture_commands(mut self, enabled: bool) -> Self {
        self.capture_commands = enabled;
        self
    }

    /// Enables erase-suspend/resume: in [`SchedMode::OutOfOrder`], a read
    /// arriving while an erase is mid-pulse on its die preempts it (never
    /// an erase of the read's own block) at the configured resume penalty.
    /// Timing only — data application is unaffected. Off by default.
    pub fn erase_suspend(mut self, enabled: bool) -> Self {
        self.erase_suspend = enabled;
        self
    }

    /// Whether erase-suspend is enabled.
    pub fn erase_suspend_enabled(&self) -> bool {
        self.erase_suspend
    }

    /// Sets the erase resume penalty in nanoseconds (default 50 µs): extra
    /// die time a suspended erase pays to rebuild its pulse.
    pub fn erase_resume_ns(mut self, ns: u64) -> Self {
        self.erase_resume_ns = ns;
        self
    }

    /// The configured erase resume penalty, ns.
    pub fn erase_resume_latency_ns(&self) -> u64 {
        self.erase_resume_ns
    }

    /// Caps how many times one erase may be suspended (default 3), so a
    /// read-heavy burst cannot starve an erase indefinitely.
    ///
    /// # Panics
    ///
    /// Panics if `max` is zero — use [`erase_suspend`](Self::erase_suspend)
    /// to disable suspension instead.
    pub fn max_erase_suspends(mut self, max: u32) -> Self {
        assert!(max >= 1, "an erase must be suspendable at least once");
        self.max_erase_suspends = max;
        self
    }

    /// The per-erase suspend cap.
    pub fn max_erase_suspends_limit(&self) -> u32 {
        self.max_erase_suspends
    }

    /// The device geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// The same timing/endurance configuration over a different geometry —
    /// used by namespace partitioning, where every shard of a physical
    /// drive inherits the drive's NAND characteristics but owns only a
    /// slice of its blocks.
    pub fn with_geometry(mut self, geometry: Geometry) -> Self {
        self.geometry = geometry;
        self
    }
}

/// Number of controller checkpoint slots a [`NandDevice`] reserves.
///
/// Two slots are ping-ponged by the FTL: the newest valid checkpoint is
/// always kept intact while the other slot is erased and rewritten, so a
/// power cut mid-checkpoint can never destroy the last good one.
pub const CKPT_SLOTS: usize = 2;

/// Per-block baseline a tail scan starts from (see
/// [`NandDevice::scan_oob`]): the block's erase count and programmed page
/// count at the time a checkpoint was taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanBaseline {
    /// Erase count recorded for the block when the baseline was captured.
    pub erase_count: u32,
    /// Pages programmed (in order, from offset 0) at capture time.
    pub programmed: u32,
}

/// One block's result from a [`NandDevice::scan_oob`] pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockScan {
    /// The block's current erase count.
    pub erase_count: u32,
    /// First page offset this pass actually read (nonzero only when a
    /// matching [`ScanBaseline`] let the scan skip a prefix).
    pub start: u32,
    /// Exclusive end of the scan: the block's write pointer (or the full
    /// block when it is completely programmed).
    pub scanned_to: u32,
    /// Whether a baseline existed for this block but its erase count no
    /// longer matched, forcing a full rescan — the caller must drop any
    /// checkpointed records it held for this block.
    pub rescanned: bool,
    /// `(page offset, record)` for every scanned page carrying an OOB
    /// record, in page order.
    pub records: Vec<(u32, OobRecord)>,
}

/// The merged result of a [`NandDevice::scan_oob`] pass: one entry per
/// block, in block-index order, plus the number of spare-area reads the
/// pass was charged for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanReport {
    /// Per-block scan results, indexed by raw block number.
    pub blocks: Vec<BlockScan>,
    /// Spare-area page reads performed (and charged to stats).
    pub pages_scanned: u64,
}

/// A simulated NAND flash device.
///
/// Enforces the physical constraints of NAND (no in-place updates, in-order
/// programming, erase-before-reuse, endurance) and accounts per-operation
/// latency into [`NandStats`].
///
/// The device is deliberately *dumb*: address translation, garbage collection
/// and wear leveling belong to the FTL crate layered on top.
///
/// # Example
///
/// ```rust
/// use insider_nand::{Geometry, NandConfig, NandDevice, Ppa, NandError};
/// use bytes::Bytes;
///
/// let mut dev = NandDevice::new(NandConfig::new(Geometry::tiny()));
/// dev.program(Ppa::new(0), Bytes::from_static(b"v1")).unwrap();
/// // NAND forbids in-place updates:
/// let err = dev.program(Ppa::new(0), Bytes::from_static(b"v2")).unwrap_err();
/// assert!(matches!(err, NandError::ProgramNonFree(_)));
/// ```
#[derive(Debug)]
pub struct NandDevice {
    config: NandConfig,
    blocks: Vec<Block>,
    /// Cumulative counters, including the per-die and per-channel busy
    /// integrals: programs and erases occupy a die, dies operate in
    /// parallel on real hardware, and all chips of one channel share its
    /// bus — the device-level makespan is `max(busiest die, busiest bus)`
    /// rather than the serial sum.
    stats: NandStats,
    /// The per-channel/per-die command queue: every successful operation
    /// is also admitted here (unless the legacy mode is selected), which
    /// yields per-command completion timestamps and latency percentiles.
    /// Timing only — data application stays synchronous at submit.
    sched: CmdScheduler,
    faults: FaultPlan,
    /// Next global program sequence number for tagged programs (1-based).
    ///
    /// Survives [`power_cut`](Self::power_cut): a real controller recovers
    /// the same value by scanning for the maximum stored sequence number
    /// during mount, so keeping the counter is equivalent to (and cheaper
    /// than) a max-scan-plus-one rebuild.
    next_seq: u64,
    /// Controller checkpoint region: [`CKPT_SLOTS`] page lists modeling a
    /// reserved NAND area. Contents persist across [`power_cut`]
    /// (checkpoints exist precisely to survive it); writes and erases go
    /// through [`ckpt_append`]/[`ckpt_erase`], which consult the fault
    /// plan like any other mutation.
    ///
    /// [`power_cut`]: Self::power_cut
    /// [`ckpt_append`]: Self::ckpt_append
    /// [`ckpt_erase`]: Self::ckpt_erase
    ckpt_slots: [Vec<Bytes>; 2],
}

impl NandDevice {
    /// Creates an erased device with the given configuration.
    pub fn new(config: NandConfig) -> Self {
        let blocks = (0..config.geometry.total_blocks())
            .map(|_| Block::new(config.geometry.pages_per_block()))
            .collect();
        let chips = config.geometry.total_chips() as usize;
        let channels = config.geometry.channels() as usize;
        let mut sched = CmdScheduler::new(
            chips,
            channels,
            config.sched_mode,
            config.queue_depth,
            config.capture_commands,
        );
        if config.erase_suspend {
            sched = sched.with_erase_suspend(config.erase_resume_ns, config.max_erase_suspends);
        }
        NandDevice {
            stats: NandStats::with_shape(chips, channels),
            sched,
            blocks,
            config,
            faults: FaultPlan::new(),
            next_seq: 1,
            ckpt_slots: [Vec::new(), Vec::new()],
        }
    }

    /// The sequence number assigned to the most recent tagged program
    /// (zero before any). Lets the FTL mirror the OOB records it just
    /// wrote without re-reading them.
    pub fn last_seq(&self) -> u64 {
        self.next_seq - 1
    }

    /// Charges one successful command to the busy integrals and, unless
    /// the legacy timing model is selected, admits it to the command
    /// scheduler. `page` is the flat physical page index (`u64::MAX` for
    /// erases). Debug builds run both accountings and assert the
    /// scheduler's busy integrals match the legacy vectors exactly — the
    /// scheduler/makespan differential oracle.
    fn charge(&mut self, kind: FaultKind, page: u64, pba: Pba, ns: u64, bus_ns: u64) {
        let chip = (pba.index() / self.config.geometry.blocks_per_chip()) as usize;
        self.stats.die_busy_ns[chip] += ns;
        let ch = pba.channel(&self.config.geometry) as usize;
        self.stats.bus_busy_ns[ch] += bus_ns;
        if self.config.sched_mode != SchedMode::Legacy {
            let overhead_before = self.sched.suspend_overhead_ns();
            self.sched
                .admit(kind, chip, ch, page, u64::from(pba.index()), ns, bus_ns);
            // A suspended erase pays its resume penalty on the die of the
            // *read* that preempted it (same die by construction); mirror
            // that extra service time into the legacy integrals so the
            // makespan differential oracle keeps holding.
            let penalty = self.sched.suspend_overhead_ns() - overhead_before;
            if penalty > 0 {
                self.stats.die_busy_ns[chip] += penalty;
                self.stats.busy_ns += penalty;
                self.stats.suspend_overhead_ns += penalty;
            }
            self.stats.erases_suspended = self.sched.erases_suspended();
            let (stalls, stall_ns) = self.sched.gc_stall_totals();
            self.stats.gc_stalled_cmds = stalls;
            self.stats.gc_stall_ns = stall_ns;
            debug_assert_eq!(
                self.sched.die_busy_ns(),
                &self.stats.die_busy_ns[..],
                "scheduler die busy integrals diverged from legacy accounting"
            );
            debug_assert_eq!(
                self.sched.bus_busy_ns(),
                &self.stats.bus_busy_ns[..],
                "scheduler bus busy integrals diverged from legacy accounting"
            );
        }
    }

    /// Simulated busy time per chip (die), in nanoseconds.
    pub fn chip_busy_ns(&self) -> &[u64] {
        &self.stats.die_busy_ns
    }

    /// Page-transfer busy time per channel bus, in nanoseconds.
    pub fn bus_busy_ns(&self) -> &[u64] {
        &self.stats.bus_busy_ns
    }

    /// Device-level makespan under perfect die parallelism, bounded by the
    /// busiest chip *or* the busiest channel bus — whichever saturates
    /// first. Compare with [`NandStats::busy_ns`](crate::NandStats) (the
    /// serial sum) to see how much parallelism a workload's distribution
    /// can exploit.
    pub fn parallel_busy_ns(&self) -> u64 {
        self.stats.parallel_busy_ns()
    }

    /// Advances the device clock to the simulated instant `now`: command
    /// arrivals are stamped with it, and every queued window whose service
    /// already started is finalized into the latency histograms. The FTL
    /// calls this at the top of each host operation. No-op in legacy mode.
    pub fn set_now(&mut self, now: SimTime) {
        if self.config.sched_mode != SchedMode::Legacy {
            self.sched.set_now(now.as_micros().saturating_mul(1000));
        }
    }

    /// Flushes the command scheduler: every queued window is finalized so
    /// [`latency_snapshot`](Self::latency_snapshot) covers all admitted
    /// commands. Call at end of run or before reading percentiles.
    pub fn sync(&mut self) {
        self.sched.flush();
    }

    /// Per-kind latency percentiles over every finalized command. Covers
    /// only commands the scheduler has finalized — [`sync`](Self::sync)
    /// first for end-of-run figures. Empty in legacy mode.
    pub fn latency_snapshot(&self) -> LatencySnapshot {
        self.sched.snapshot()
    }

    /// Latency percentiles over finalized *host-issued* commands only:
    /// commands admitted inside the GC context
    /// ([`set_gc_context`](Self::set_gc_context)) are excluded. This is the
    /// foreground distribution a host observes. Empty in legacy mode.
    pub fn host_latency_snapshot(&self) -> LatencySnapshot {
        self.sched.host_snapshot()
    }

    /// Flags subsequent operations as GC-internal (`true`) or host-issued
    /// (`false`, the initial state) for latency attribution. The FTL brackets
    /// its GC work with this; data behavior is unaffected.
    pub fn set_gc_context(&mut self, gc: bool) {
        self.sched.set_gc_context(gc);
    }

    /// How many in-flight erases the scheduler suspended for a read.
    pub fn erases_suspended(&self) -> u64 {
        self.sched.erases_suspended()
    }

    /// The scheduler's busy-integral makespan. Equal to
    /// [`parallel_busy_ns`](Self::parallel_busy_ns) by construction (both
    /// sum pure service time per resource); zero in legacy mode.
    pub fn sched_makespan_ns(&self) -> u64 {
        self.sched.makespan_ns()
    }

    /// Queue-aware completion horizon: when the last known command
    /// finishes, including idle gaps between arrivals. Zero in legacy mode.
    pub fn completion_horizon_ns(&self) -> u64 {
        self.sched.completion_horizon_ns()
    }

    /// How many reads the out-of-order scheduler promoted past at least
    /// one queued mutation.
    pub fn reads_promoted(&self) -> u64 {
        self.sched.reads_promoted()
    }

    /// Latest completion among GC-context admissions — when the most
    /// recent GC work fully lands on the arrays. Zero in legacy mode.
    pub fn gc_horizon_ns(&self) -> u64 {
        self.sched.gc_horizon_ns()
    }

    /// Stalls the firmware for the host until `ns`: host commands
    /// submitted earlier dispatch at `ns`, with the wait counted into
    /// their host-visible latency. A blocking GC drain calls this with
    /// [`gc_horizon_ns`](Self::gc_horizon_ns); no-op in legacy mode.
    pub fn stall_host_until(&mut self, ns: u64) {
        self.sched.stall_host_until(ns);
    }

    /// The timing model in effect.
    pub fn sched_mode(&self) -> SchedMode {
        self.config.sched_mode
    }

    /// Drains the per-command capture log (empty unless
    /// `NandConfig::capture_commands` was enabled). Flushes the scheduler
    /// first so still-queued commands are finalized into the log — taking
    /// the log means asking for the complete schedule so far.
    pub fn take_captured_commands(&mut self) -> Vec<CmdRecord> {
        self.sched.flush();
        self.sched.take_captured()
    }

    /// The device geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.config.geometry
    }

    /// Cumulative operation statistics.
    pub fn stats(&self) -> &NandStats {
        &self.stats
    }

    /// Installs a deterministic fault-injection plan.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = plan;
    }

    /// Immutable view of a block, for policy audits and tests.
    ///
    /// # Errors
    ///
    /// Returns [`NandError::PbaOutOfRange`] for addresses beyond the geometry.
    pub fn block(&self, pba: Pba) -> Result<&Block> {
        self.blocks
            .get(pba.index() as usize)
            .ok_or(NandError::PbaOutOfRange(pba))
    }

    fn check_ppa(&self, ppa: Ppa) -> Result<()> {
        if ppa.is_valid(&self.config.geometry) {
            Ok(())
        } else {
            Err(NandError::PpaOutOfRange(ppa))
        }
    }

    /// Consults the fault plan for one operation attempt of `kind`,
    /// translating the outcome into stats and an error.
    fn consult_faults(&mut self, kind: FaultKind) -> Result<()> {
        match self.faults.check(kind) {
            FaultCheck::Proceed => Ok(()),
            FaultCheck::Injected => {
                self.stats.record_failure();
                self.stats.record_injected_fault();
                Err(NandError::InjectedFault(FaultPlan::label(kind)))
            }
            FaultCheck::PowerCut => {
                self.stats.record_failure();
                self.stats.record_injected_fault();
                Err(NandError::PowerLoss)
            }
            FaultCheck::PoweredOff => {
                self.stats.record_failure();
                Err(NandError::PowerLoss)
            }
        }
    }

    /// Whether a scheduled power cut has fired and the device is latched
    /// off (every operation fails until [`power_cut`](Self::power_cut)
    /// power-cycles it).
    pub fn is_powered_off(&self) -> bool {
        self.faults.is_powered_off()
    }

    /// Power-cycles the device after a (possibly scheduled) power loss.
    ///
    /// DRAM-like state is what a real controller loses: here that is the
    /// FTL's view of page validity, which the device mirrors in its page
    /// states. Every `Valid` page therefore degrades to `Invalid` — data,
    /// OOB records, write pointers, erase counts and stats all persist, and
    /// it is the FTL's mount scan that re-validates the winning copy of
    /// each logical page. Also clears the fault plan's powered-off latch so
    /// the mount scan can read again.
    pub fn power_cut(&mut self) {
        for block in &mut self.blocks {
            for offset in 0..block.len() {
                if block.page(offset).state() == PageState::Valid {
                    block.page_mut(offset).invalidate();
                }
            }
        }
        // Timing windows queued at the instant of the cut are finalized:
        // their data already landed (application is synchronous at
        // submit), and the restarted device must not carry stale windows.
        self.sched.flush();
        self.faults.power_restored();
    }

    /// Reads the payload of a programmed page.
    ///
    /// # Errors
    ///
    /// * [`NandError::PpaOutOfRange`] — address beyond geometry.
    /// * [`NandError::ReadUnwritten`] — page not programmed since last erase.
    /// * [`NandError::InjectedFault`] — scheduled by the fault plan.
    /// * [`NandError::PowerLoss`] — power is cut or already off.
    pub fn read(&mut self, ppa: Ppa) -> Result<Bytes> {
        if let Err(e) = self.check_ppa(ppa) {
            self.stats.record_failure();
            return Err(e);
        }
        self.consult_faults(FaultKind::Read)?;
        let g = self.config.geometry;
        let block = &self.blocks[ppa.block(&g).index() as usize];
        let page = block.page(ppa.page_offset(&g));
        match page.data() {
            Some(data) => {
                // Reference-counted handoff: the host gets a handle to the
                // stored buffer, not a copy.
                let data = data.clone();
                self.stats.record_read(self.config.read_latency_ns);
                self.charge(
                    FaultKind::Read,
                    ppa.index(),
                    ppa.block(&g),
                    self.config.read_latency_ns,
                    self.config.bus_transfer_ns,
                );
                Ok(data)
            }
            None => {
                self.stats.record_failure();
                Err(NandError::ReadUnwritten(ppa))
            }
        }
    }

    /// Programs a free page with `data`.
    ///
    /// Pages within a block must be programmed in order; the page must be
    /// free; the payload must fit in a page.
    ///
    /// # Errors
    ///
    /// * [`NandError::PpaOutOfRange`] — address beyond geometry.
    /// * [`NandError::PayloadTooLarge`] — payload exceeds page size.
    /// * [`NandError::ProgramNonFree`] — in-place update attempted.
    /// * [`NandError::ProgramOutOfOrder`] — violates in-order programming.
    /// * [`NandError::InjectedFault`] — scheduled by the fault plan.
    /// * [`NandError::PowerLoss`] — power is cut or already off.
    pub fn program(&mut self, ppa: Ppa, data: Bytes) -> Result<()> {
        self.program_inner(ppa, data, None)
    }

    /// Programs a free page with `data` plus an out-of-band record.
    ///
    /// The OOB record is stored atomically with the data (spare-area
    /// semantics): if the program fails, neither lands. The device completes
    /// the FTL-supplied [`OobTag`] with the next global program sequence
    /// number, which totally orders all tagged programs and survives power
    /// loss — the basis for mount-time "newest wins" conflict resolution.
    ///
    /// # Errors
    ///
    /// Same as [`program`](Self::program).
    pub fn program_tagged(&mut self, ppa: Ppa, data: Bytes, tag: OobTag) -> Result<()> {
        self.program_inner(ppa, data, Some(tag))
    }

    fn program_inner(&mut self, ppa: Ppa, data: Bytes, tag: Option<OobTag>) -> Result<()> {
        if let Err(e) = self.check_ppa(ppa) {
            self.stats.record_failure();
            return Err(e);
        }
        if data.len() > self.config.geometry.page_size() as usize {
            self.stats.record_failure();
            return Err(NandError::PayloadTooLarge {
                len: data.len(),
                page_size: self.config.geometry.page_size(),
            });
        }
        self.consult_faults(FaultKind::Program)?;
        let g = self.config.geometry;
        let offset = ppa.page_offset(&g);
        let raw = ppa.block(&g).index() as usize;
        {
            let block = &self.blocks[raw];
            if !block.page(offset).is_free() {
                self.stats.record_failure();
                return Err(NandError::ProgramNonFree(ppa));
            }
            match block.write_ptr() {
                Some(expected) if expected == offset => {}
                expected => {
                    self.stats.record_failure();
                    return Err(NandError::ProgramOutOfOrder {
                        requested: ppa,
                        expected_offset: expected,
                    });
                }
            }
        }
        let oob = tag.map(|t| {
            let record = OobRecord::from_tag(t, self.next_seq);
            self.next_seq += 1;
            record
        });
        // Provenance: is the payload's backing buffer still aliased by an
        // upstream holder (zero-copy) or did it arrive uniquely owned (a
        // private allocation was handed over)?
        self.stats.record_buffer(data.is_shared());
        let block = &mut self.blocks[raw];
        block.page_mut(offset).program(data, oob);
        block.advance_write_ptr();
        self.stats.record_program(self.config.program_latency_ns);
        self.charge(
            FaultKind::Program,
            ppa.index(),
            ppa.block(&g),
            self.config.program_latency_ns,
            self.config.bus_transfer_ns,
        );
        Ok(())
    }

    /// Multi-page read submit: fetches every page of one extent in a single
    /// device call, in order.
    ///
    /// Each page is charged exactly as an individual [`read`](Self::read)
    /// (array time to its die, transfer time to its channel bus), so the
    /// serial [`NandStats::busy_ns`](crate::NandStats) sum is unchanged —
    /// but because the FTL stripes consecutive extent pages across dies,
    /// the per-chip/per-bus vectors behind
    /// [`parallel_busy_ns`](Self::parallel_busy_ns) overlap, which is where
    /// a grouped submit beats N independent commands on real hardware.
    ///
    /// # Errors
    ///
    /// Stops at the first failing page and returns its error; reads have no
    /// side effects beyond stats, so the caller loses nothing.
    pub fn read_pages(&mut self, ppas: &[Ppa]) -> Result<Vec<Bytes>> {
        let mut out = Vec::with_capacity(ppas.len());
        for &ppa in ppas {
            out.push(self.read(ppa)?);
        }
        Ok(out)
    }

    /// Multi-page program submit: the batch is enqueued and drained in
    /// *issue order* — programs are mutations, which the scheduler never
    /// reorders, so issue order equals submission order. Each page is
    /// applied, fault-checked and charged exactly as an individual
    /// [`program`](Self::program) call (see [`read_pages`](Self::read_pages)
    /// for the serial-vs-parallel split).
    ///
    /// Returns how many leading pages were programmed alongside the overall
    /// result: on a mid-batch failure the count tells the caller exactly
    /// which prefix landed, so it can finish its mapping bookkeeping for
    /// those pages before handling the error — a partially applied extent
    /// must never leave orphaned valid pages. Because the fault plan is
    /// consulted per command at drain, a power cut scheduled by
    /// [`FaultPlan::power_cut_after`](crate::FaultPlan::power_cut_after)
    /// counts commands in issue order: the triggering program and the
    /// entire queued-but-unissued tail of the batch are lost atomically.
    pub fn program_pages(&mut self, pages: Vec<(Ppa, Bytes)>) -> (usize, Result<()>) {
        let total = pages.len();
        for (done, (ppa, data)) in pages.into_iter().enumerate() {
            if let Err(e) = self.program(ppa, data) {
                return (done, Err(e));
            }
        }
        (total, Ok(()))
    }

    /// Multi-page tagged program submit: [`program_pages`](Self::program_pages)
    /// with a per-page [`OobTag`]. Each landed page gets its own monotone
    /// sequence number, so a crash mid-batch leaves a prefix whose OOB
    /// records exactly describe which pages were acknowledged.
    pub fn program_pages_tagged(
        &mut self,
        pages: Vec<(Ppa, Bytes, OobTag)>,
    ) -> (usize, Result<()>) {
        let total = pages.len();
        for (done, (ppa, data, tag)) in pages.into_iter().enumerate() {
            if let Err(e) = self.program_tagged(ppa, data, tag) {
                return (done, Err(e));
            }
        }
        (total, Ok(()))
    }

    /// The out-of-band record of the page at `ppa`, if the page was
    /// programmed with one. Metadata peek with no timing or fault checks,
    /// for audits and tests; mount scans use [`read_oob`](Self::read_oob).
    ///
    /// # Errors
    ///
    /// Returns [`NandError::PpaOutOfRange`] for addresses beyond the geometry.
    pub fn oob(&self, ppa: Ppa) -> Result<Option<OobRecord>> {
        self.check_ppa(ppa)?;
        let g = self.config.geometry;
        Ok(self.blocks[ppa.block(&g).index() as usize]
            .page(ppa.page_offset(&g))
            .oob()
            .copied())
    }

    /// The stored payload of the page at `ppa`, if programmed. Metadata
    /// peek with no timing or fault checks, for differential oracles and
    /// tests; the host data path uses [`read`](Self::read).
    ///
    /// # Errors
    ///
    /// Returns [`NandError::PpaOutOfRange`] for addresses beyond the geometry.
    pub fn peek_data(&self, ppa: Ppa) -> Result<Option<&Bytes>> {
        self.check_ppa(ppa)?;
        let g = self.config.geometry;
        Ok(self.blocks[ppa.block(&g).index() as usize]
            .page(ppa.page_offset(&g))
            .data())
    }

    /// Reads the out-of-band record of the page at `ppa` as a mount scan
    /// does: charged as a full page read (array time plus bus transfer) and
    /// subject to the fault plan. Unprogrammed pages yield `Ok(None)` — the
    /// spare area of an erased page reads blank.
    ///
    /// # Errors
    ///
    /// * [`NandError::PpaOutOfRange`] — address beyond geometry.
    /// * [`NandError::InjectedFault`] — scheduled by the fault plan.
    /// * [`NandError::PowerLoss`] — power is cut or already off.
    pub fn read_oob(&mut self, ppa: Ppa) -> Result<Option<OobRecord>> {
        if let Err(e) = self.check_ppa(ppa) {
            self.stats.record_failure();
            return Err(e);
        }
        self.consult_faults(FaultKind::Read)?;
        let g = self.config.geometry;
        let record = self.blocks[ppa.block(&g).index() as usize]
            .page(ppa.page_offset(&g))
            .oob()
            .copied();
        self.stats.record_read(self.config.read_latency_ns);
        self.charge(
            FaultKind::Read,
            ppa.index(),
            ppa.block(&g),
            self.config.read_latency_ns,
            self.config.bus_transfer_ns,
        );
        Ok(record)
    }

    /// Bulk spare-area scan of every block, sharded across `threads` OS
    /// threads (clamped to the block count; `0` and `1` both mean a single
    /// thread). Blocks are split into contiguous ranges — the simulator's
    /// stand-in for per-channel/per-die scan parallelism — and the merged
    /// report is always in block-index order, so the result is
    /// deterministic regardless of thread count.
    ///
    /// With a `baseline`, a block whose erase count still matches its
    /// [`ScanBaseline`] is scanned only from the baseline's programmed
    /// count to its write pointer (the OOB *tail*); a mismatched block is
    /// rescanned in full and flagged [`rescanned`](BlockScan::rescanned).
    ///
    /// Each scanned page is charged as one spare-area read (array time
    /// plus bus transfer) in bulk: counts and the serial busy integral
    /// move, but the per-die vectors and the command scheduler do not — a
    /// mount scan runs before the host queue exists. Unlike
    /// [`read_oob`](Self::read_oob), per-page faults are not consulted
    /// (the caller power-cycled the device; a scan is all-or-nothing).
    ///
    /// # Errors
    ///
    /// [`NandError::PowerLoss`] if the device is latched off.
    ///
    /// # Panics
    ///
    /// Panics if `baseline` is present but not sized to the block count.
    pub fn scan_oob(
        &mut self,
        baseline: Option<&[ScanBaseline]>,
        threads: usize,
    ) -> Result<ScanReport> {
        if self.faults.is_powered_off() {
            self.stats.record_failure();
            return Err(NandError::PowerLoss);
        }
        let ppb = self.config.geometry.pages_per_block();
        let nblocks = self.blocks.len();
        if let Some(base) = baseline {
            assert_eq!(base.len(), nblocks, "scan baseline must cover every block");
        }
        let shard_count = threads.max(1).min(nblocks.max(1));
        let chunk = nblocks.div_ceil(shard_count);
        let blocks = &self.blocks;
        let scan_range = |lo: usize, hi: usize| -> Vec<BlockScan> {
            let mut out = Vec::with_capacity(hi - lo);
            for b in lo..hi {
                let block = &blocks[b];
                let scanned_to = block.write_ptr().unwrap_or(ppb);
                let (start, rescanned) = match baseline {
                    Some(base) if base[b].erase_count == block.erase_count() => {
                        (base[b].programmed.min(scanned_to), false)
                    }
                    Some(_) => (0, true),
                    None => (0, false),
                };
                let mut records = Vec::with_capacity((scanned_to - start) as usize);
                for offset in start..scanned_to {
                    if let Some(record) = block.page(offset).oob() {
                        records.push((offset, *record));
                    }
                }
                out.push(BlockScan {
                    erase_count: block.erase_count(),
                    start,
                    scanned_to,
                    rescanned,
                    records,
                });
            }
            out
        };
        let merged: Vec<BlockScan> = if shard_count <= 1 {
            scan_range(0, nblocks)
        } else {
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..shard_count)
                    .map(|i| {
                        let lo = (i * chunk).min(nblocks);
                        let hi = ((i + 1) * chunk).min(nblocks);
                        s.spawn(move || scan_range(lo, hi))
                    })
                    .collect();
                // Shards are contiguous block ranges joined in spawn
                // order, so the fold is a plain order-preserving concat.
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("scan shard panicked"))
                    .collect()
            })
        };
        let pages_scanned: u64 = merged
            .iter()
            .map(|b| u64::from(b.scanned_to - b.start))
            .sum();
        self.stats.record_scan(
            pages_scanned,
            self.config.read_latency_ns + self.config.bus_transfer_ns,
        );
        Ok(ScanReport {
            blocks: merged,
            pages_scanned,
        })
    }

    /// Erases checkpoint slot `slot`, preparing it for a new checkpoint.
    /// Counts as one erase mutation: it is fault-checked and charged like
    /// a block erase, so crash sweeps enumerate cut points on it.
    ///
    /// # Errors
    ///
    /// * [`NandError::InjectedFault`] — scheduled by the fault plan.
    /// * [`NandError::PowerLoss`] — power is cut or already off (the slot
    ///   is left untouched).
    ///
    /// # Panics
    ///
    /// Panics if `slot >= CKPT_SLOTS`.
    pub fn ckpt_erase(&mut self, slot: usize) -> Result<()> {
        assert!(slot < CKPT_SLOTS, "checkpoint slot out of range");
        self.consult_faults(FaultKind::Erase)?;
        self.ckpt_slots[slot].clear();
        self.stats.record_erase(self.config.erase_latency_ns);
        Ok(())
    }

    /// Appends one page to checkpoint slot `slot`. Counts as one program
    /// mutation: fault-checked and charged like a page program, so a
    /// power cut can land between any two checkpoint pages and leave a
    /// torn (CRC-invalid) checkpoint behind.
    ///
    /// # Errors
    ///
    /// * [`NandError::PayloadTooLarge`] — page exceeds the geometry's page
    ///   size.
    /// * [`NandError::InjectedFault`] — scheduled by the fault plan.
    /// * [`NandError::PowerLoss`] — power is cut or already off (the page
    ///   is not appended).
    ///
    /// # Panics
    ///
    /// Panics if `slot >= CKPT_SLOTS`.
    pub fn ckpt_append(&mut self, slot: usize, page: Bytes) -> Result<()> {
        assert!(slot < CKPT_SLOTS, "checkpoint slot out of range");
        if page.len() > self.config.geometry.page_size() as usize {
            self.stats.record_failure();
            return Err(NandError::PayloadTooLarge {
                len: page.len(),
                page_size: self.config.geometry.page_size(),
            });
        }
        self.consult_faults(FaultKind::Program)?;
        self.ckpt_slots[slot].push(page);
        self.stats.record_program(self.config.program_latency_ns);
        Ok(())
    }

    /// Reads back checkpoint slot `slot`, charging one page read per
    /// stored page. An empty slot yields an empty list.
    ///
    /// # Errors
    ///
    /// * [`NandError::InjectedFault`] — scheduled by the fault plan.
    /// * [`NandError::PowerLoss`] — power is cut or already off.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= CKPT_SLOTS`.
    pub fn ckpt_read(&mut self, slot: usize) -> Result<Vec<Bytes>> {
        assert!(slot < CKPT_SLOTS, "checkpoint slot out of range");
        for _ in 0..self.ckpt_slots[slot].len() {
            self.consult_faults(FaultKind::Read)?;
        }
        let pages = self.ckpt_slots[slot].clone();
        self.stats
            .record_scan(pages.len() as u64, self.config.read_latency_ns);
        Ok(pages)
    }

    /// Free peek at checkpoint slot `slot` (no timing, no faults), for
    /// differential oracles and tests.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= CKPT_SLOTS`.
    pub fn ckpt_peek(&self, slot: usize) -> &[Bytes] {
        assert!(slot < CKPT_SLOTS, "checkpoint slot out of range");
        &self.ckpt_slots[slot]
    }

    /// Marks a programmed page invalid (superseded). FTL-driven; free pages
    /// or already-invalid pages are left unchanged.
    ///
    /// # Errors
    ///
    /// Returns [`NandError::PpaOutOfRange`] for addresses beyond the geometry.
    pub fn invalidate(&mut self, ppa: Ppa) -> Result<()> {
        self.check_ppa(ppa)?;
        let g = self.config.geometry;
        let block = &mut self.blocks[ppa.block(&g).index() as usize];
        let offset = ppa.page_offset(&g);
        if block.page(offset).state() == PageState::Valid {
            block.page_mut(offset).invalidate();
        }
        Ok(())
    }

    /// Marks an invalid page valid again.
    ///
    /// This is FTL bookkeeping, not a physical NAND operation: the page's
    /// payload was never erased ("delayed deletion"), so rolling a mapping
    /// entry back to an old physical page simply flips the old page's state
    /// back to live. Valid and free pages are left unchanged.
    ///
    /// # Errors
    ///
    /// Returns [`NandError::PpaOutOfRange`] for addresses beyond the geometry.
    pub fn revalidate(&mut self, ppa: Ppa) -> Result<()> {
        self.check_ppa(ppa)?;
        let g = self.config.geometry;
        let block = &mut self.blocks[ppa.block(&g).index() as usize];
        let offset = ppa.page_offset(&g);
        if block.page(offset).state() == PageState::Invalid {
            block.page_mut(offset).revalidate();
        }
        Ok(())
    }

    /// Bulk [`revalidate`](Self::revalidate): the mount's conflict
    /// resolution flips hundreds of thousands of page states in one go, so
    /// the per-call address check and block lookup are amortized over runs
    /// of same-block addresses. Pass physically sorted addresses for cache
    /// locality and maximal run length; correctness does not depend on the
    /// order. All-or-nothing on the address check: no state changes unless
    /// every address is in range.
    ///
    /// # Errors
    ///
    /// Returns [`NandError::PpaOutOfRange`] for addresses beyond the geometry.
    pub fn revalidate_many(&mut self, ppas: &[Ppa]) -> Result<()> {
        for &ppa in ppas {
            self.check_ppa(ppa)?;
        }
        let g = self.config.geometry;
        let mut i = 0;
        while i < ppas.len() {
            let pba = ppas[i].block(&g);
            let block = &mut self.blocks[pba.index() as usize];
            while i < ppas.len() && ppas[i].block(&g) == pba {
                let offset = ppas[i].page_offset(&g);
                if block.page(offset).state() == PageState::Invalid {
                    block.page_mut(offset).revalidate();
                }
                i += 1;
            }
        }
        Ok(())
    }

    /// Erases a block, freeing all of its pages.
    ///
    /// # Errors
    ///
    /// * [`NandError::PbaOutOfRange`] — address beyond geometry.
    /// * [`NandError::BlockWornOut`] — endurance limit reached.
    /// * [`NandError::InjectedFault`] — scheduled by the fault plan.
    /// * [`NandError::PowerLoss`] — power is cut or already off.
    pub fn erase(&mut self, pba: Pba) -> Result<()> {
        if !pba.is_valid(&self.config.geometry) {
            self.stats.record_failure();
            return Err(NandError::PbaOutOfRange(pba));
        }
        self.consult_faults(FaultKind::Erase)?;
        let block = &mut self.blocks[pba.index() as usize];
        if block.erase_count() >= self.config.endurance {
            self.stats.record_failure();
            return Err(NandError::BlockWornOut(pba));
        }
        block.erase();
        self.stats.record_erase(self.config.erase_latency_ns);
        self.charge(
            FaultKind::Erase,
            u64::MAX,
            pba,
            self.config.erase_latency_ns,
            0,
        );
        Ok(())
    }

    /// The state of the page at `ppa`.
    ///
    /// # Errors
    ///
    /// Returns [`NandError::PpaOutOfRange`] for addresses beyond the geometry.
    pub fn page_state(&self, ppa: Ppa) -> Result<PageState> {
        self.check_ppa(ppa)?;
        let g = self.config.geometry;
        Ok(self.blocks[ppa.block(&g).index() as usize]
            .page(ppa.page_offset(&g))
            .state())
    }

    /// Maximum erase count across all blocks (wear ceiling).
    pub fn max_erase_count(&self) -> u32 {
        self.blocks
            .iter()
            .map(Block::erase_count)
            .max()
            .unwrap_or(0)
    }

    /// Per-block wear summary: `(min, max, mean)` erase counts. The spread
    /// between min and max is what wear-leveling tries to keep small.
    pub fn wear_summary(&self) -> (u32, u32, f64) {
        let min = self
            .blocks
            .iter()
            .map(Block::erase_count)
            .min()
            .unwrap_or(0);
        let max = self.max_erase_count();
        let mean = if self.blocks.is_empty() {
            0.0
        } else {
            self.total_erases() as f64 / self.blocks.len() as f64
        };
        (min, max, mean)
    }

    /// Sum of erase counts across all blocks.
    pub fn total_erases(&self) -> u64 {
        self.blocks.iter().map(|b| b.erase_count() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> NandDevice {
        NandDevice::new(NandConfig::new(Geometry::tiny()))
    }

    #[test]
    fn program_then_read_round_trips() {
        let mut d = dev();
        d.program(Ppa::new(0), Bytes::from_static(b"abc")).unwrap();
        assert_eq!(d.read(Ppa::new(0)).unwrap().as_ref(), b"abc");
    }

    #[test]
    fn read_unwritten_page_fails() {
        let mut d = dev();
        assert_eq!(
            d.read(Ppa::new(5)),
            Err(NandError::ReadUnwritten(Ppa::new(5)))
        );
    }

    #[test]
    fn in_place_update_is_rejected() {
        let mut d = dev();
        d.program(Ppa::new(0), Bytes::from_static(b"v1")).unwrap();
        assert_eq!(
            d.program(Ppa::new(0), Bytes::from_static(b"v2")),
            Err(NandError::ProgramNonFree(Ppa::new(0)))
        );
        // Old data untouched.
        assert_eq!(d.read(Ppa::new(0)).unwrap().as_ref(), b"v1");
    }

    #[test]
    fn out_of_order_program_is_rejected() {
        let mut d = dev();
        let err = d
            .program(Ppa::new(2), Bytes::from_static(b"x"))
            .unwrap_err();
        assert_eq!(
            err,
            NandError::ProgramOutOfOrder {
                requested: Ppa::new(2),
                expected_offset: Some(0)
            }
        );
    }

    #[test]
    fn erase_frees_pages_for_reprogramming() {
        let mut d = dev();
        d.program(Ppa::new(0), Bytes::from_static(b"v1")).unwrap();
        d.erase(Pba::new(0)).unwrap();
        assert_eq!(d.page_state(Ppa::new(0)).unwrap(), PageState::Free);
        d.program(Ppa::new(0), Bytes::from_static(b"v2")).unwrap();
        assert_eq!(d.read(Ppa::new(0)).unwrap().as_ref(), b"v2");
    }

    #[test]
    fn invalidate_marks_valid_pages_only() {
        let mut d = dev();
        d.program(Ppa::new(0), Bytes::from_static(b"v")).unwrap();
        d.invalidate(Ppa::new(0)).unwrap();
        assert_eq!(d.page_state(Ppa::new(0)).unwrap(), PageState::Invalid);
        // Idempotent on invalid pages, no-op on free pages.
        d.invalidate(Ppa::new(0)).unwrap();
        d.invalidate(Ppa::new(1)).unwrap();
        assert_eq!(d.page_state(Ppa::new(1)).unwrap(), PageState::Free);
    }

    #[test]
    fn invalid_page_data_survives_until_erase() {
        let mut d = dev();
        d.program(Ppa::new(0), Bytes::from_static(b"old")).unwrap();
        d.invalidate(Ppa::new(0)).unwrap();
        // Delayed deletion: the payload is still physically readable.
        assert_eq!(d.read(Ppa::new(0)).unwrap().as_ref(), b"old");
        d.erase(Pba::new(0)).unwrap();
        assert!(d.read(Ppa::new(0)).is_err());
    }

    #[test]
    fn payload_too_large_is_rejected() {
        let g = Geometry::builder().page_size(4).build();
        let mut d = NandDevice::new(NandConfig::new(g));
        let err = d
            .program(Ppa::new(0), Bytes::from_static(b"12345"))
            .unwrap_err();
        assert_eq!(
            err,
            NandError::PayloadTooLarge {
                len: 5,
                page_size: 4
            }
        );
    }

    #[test]
    fn out_of_range_addresses_fail() {
        let mut d = dev();
        assert!(matches!(
            d.read(Ppa::new(100_000)),
            Err(NandError::PpaOutOfRange(_))
        ));
        assert!(matches!(
            d.erase(Pba::new(100_000)),
            Err(NandError::PbaOutOfRange(_))
        ));
    }

    #[test]
    fn endurance_limit_enforced() {
        let g = Geometry::tiny();
        let mut d = NandDevice::new(NandConfig::new(g).endurance(2));
        d.erase(Pba::new(0)).unwrap();
        d.erase(Pba::new(0)).unwrap();
        assert_eq!(
            d.erase(Pba::new(0)),
            Err(NandError::BlockWornOut(Pba::new(0)))
        );
        assert_eq!(d.max_erase_count(), 2);
        assert_eq!(d.total_erases(), 2);
    }

    #[test]
    fn stats_account_latencies() {
        let g = Geometry::tiny();
        let mut d = NandDevice::new(
            NandConfig::new(g)
                .read_latency_ns(10)
                .program_latency_ns(20)
                .erase_latency_ns(30),
        );
        d.program(Ppa::new(0), Bytes::from_static(b"x")).unwrap();
        d.read(Ppa::new(0)).unwrap();
        d.erase(Pba::new(0)).unwrap();
        let s = d.stats();
        assert_eq!((s.reads, s.programs, s.erases), (1, 1, 1));
        assert_eq!(s.busy_ns, 60);
    }

    #[test]
    fn injected_faults_fail_scheduled_ops() {
        let mut d = dev();
        let mut plan = FaultPlan::new();
        plan.fail_nth(FaultKind::Program, 2);
        d.set_fault_plan(plan);
        d.program(Ppa::new(0), Bytes::from_static(b"a")).unwrap();
        assert_eq!(
            d.program(Ppa::new(1), Bytes::from_static(b"b")),
            Err(NandError::InjectedFault("program"))
        );
        // Page 1 was not programmed, so in-order pointer still expects offset 1.
        d.program(Ppa::new(1), Bytes::from_static(b"b")).unwrap();
        assert_eq!(d.stats().failures, 1);
    }

    #[test]
    fn chip_parallelism_accounting() {
        let g = Geometry::builder()
            .channels(1)
            .chips_per_channel(2)
            .blocks_per_chip(2)
            .pages_per_block(4)
            .page_size(16)
            .build();
        let mut d = NandDevice::new(
            NandConfig::new(g)
                .program_latency_ns(100)
                .bus_transfer_ns(10),
        );
        // Blocks 0..1 live on chip 0; blocks 2..3 on chip 1 (same channel).
        d.program(Ppa::new(0), Bytes::from_static(b"a")).unwrap();
        d.program(Ppa::new(8), Bytes::from_static(b"b")).unwrap();
        assert_eq!(d.stats().busy_ns, 200, "serial sum counts both");
        assert_eq!(d.parallel_busy_ns(), 100, "dies overlap perfectly");
        assert_eq!(d.chip_busy_ns(), &[100, 100]);
        assert_eq!(d.bus_busy_ns(), &[20], "one shared bus carried both pages");
        // A second op on chip 0 breaks the symmetry.
        d.program(Ppa::new(1), Bytes::from_static(b"c")).unwrap();
        assert_eq!(d.parallel_busy_ns(), 200);
    }

    #[test]
    fn bus_bound_workloads_saturate_on_the_channel() {
        let g = Geometry::builder()
            .channels(1)
            .chips_per_channel(4)
            .blocks_per_chip(2)
            .pages_per_block(4)
            .page_size(16)
            .build();
        // Fast dies, slow bus: the shared channel becomes the bottleneck.
        let mut d = NandDevice::new(
            NandConfig::new(g)
                .program_latency_ns(10)
                .bus_transfer_ns(100),
        );
        for chip in 0..4u64 {
            d.program(Ppa::new(chip * 8), Bytes::from_static(b"x"))
                .unwrap();
        }
        // Four dies overlap (10 ns each) but the bus carried 4 x 100 ns.
        assert_eq!(d.parallel_busy_ns(), 400);
    }

    #[test]
    fn batched_submit_matches_scalar_accounting() {
        let g = Geometry::builder()
            .channels(1)
            .chips_per_channel(2)
            .blocks_per_chip(2)
            .pages_per_block(4)
            .page_size(16)
            .build();
        let make = || {
            NandDevice::new(
                NandConfig::new(g)
                    .program_latency_ns(100)
                    .bus_transfer_ns(10),
            )
        };
        // Extent striped across both dies: pages 0..2 of chip 0's block 0
        // interleaved with pages 0..2 of chip 1's block 2.
        let ppas = [0u64, 8, 1, 9];
        let mut batched = make();
        let pages: Vec<(Ppa, Bytes)> = ppas
            .iter()
            .map(|&p| (Ppa::new(p), Bytes::from_static(b"x")))
            .collect();
        let (done, res) = batched.program_pages(pages);
        res.unwrap();
        assert_eq!(done, 4);
        let mut scalar = make();
        for &p in &ppas {
            scalar
                .program(Ppa::new(p), Bytes::from_static(b"x"))
                .unwrap();
        }
        assert_eq!(batched.stats().programs, scalar.stats().programs);
        assert_eq!(batched.stats().busy_ns, scalar.stats().busy_ns);
        assert_eq!(batched.chip_busy_ns(), scalar.chip_busy_ns());
        assert_eq!(batched.bus_busy_ns(), scalar.bus_busy_ns());
        // The striped extent overlaps perfectly across the two dies.
        assert_eq!(batched.parallel_busy_ns(), 200);
        assert_eq!(batched.stats().busy_ns, 400);
        assert_eq!(
            batched.read_pages(&ppas.map(Ppa::new)).unwrap(),
            vec![Bytes::from_static(b"x"); 4]
        );
    }

    #[test]
    fn batched_program_reports_failing_prefix() {
        let mut d = dev();
        let mut plan = FaultPlan::new();
        plan.fail_nth(FaultKind::Program, 3);
        d.set_fault_plan(plan);
        let pages: Vec<(Ppa, Bytes)> = (0..4)
            .map(|p| (Ppa::new(p), Bytes::from_static(b"y")))
            .collect();
        let (done, res) = d.program_pages(pages);
        assert_eq!(done, 2, "two pages landed before the injected fault");
        assert_eq!(res, Err(NandError::InjectedFault("program")));
        assert_eq!(d.page_state(Ppa::new(1)).unwrap(), PageState::Valid);
        assert_eq!(d.page_state(Ppa::new(2)).unwrap(), PageState::Free);
    }

    #[test]
    fn batched_read_stops_at_first_error() {
        let mut d = dev();
        d.program(Ppa::new(0), Bytes::from_static(b"a")).unwrap();
        let err = d.read_pages(&[Ppa::new(0), Ppa::new(5)]).unwrap_err();
        assert_eq!(err, NandError::ReadUnwritten(Ppa::new(5)));
    }

    #[test]
    fn tagged_programs_stamp_monotone_sequence_numbers() {
        use crate::{Lba, SimTime};
        let mut d = dev();
        d.program_tagged(
            Ppa::new(0),
            Bytes::from_static(b"a"),
            crate::OobTag::live(Lba::new(7), SimTime::from_secs(1)),
        )
        .unwrap();
        d.program_tagged(
            Ppa::new(1),
            Bytes::from_static(b"b"),
            crate::OobTag::backup(Lba::new(7), SimTime::from_secs(2)),
        )
        .unwrap();
        let first = d.oob(Ppa::new(0)).unwrap().unwrap();
        let second = d.oob(Ppa::new(1)).unwrap().unwrap();
        assert_eq!(first.lba, Lba::new(7));
        assert!(first.live && !second.live);
        assert!(second.seq > first.seq);
        // Untagged programs carry no OOB and consume no sequence number.
        d.program(Ppa::new(2), Bytes::from_static(b"c")).unwrap();
        assert_eq!(d.oob(Ppa::new(2)).unwrap(), None);
        d.program_tagged(
            Ppa::new(3),
            Bytes::from_static(b"d"),
            crate::OobTag::live(Lba::new(8), SimTime::ZERO),
        )
        .unwrap();
        assert_eq!(d.oob(Ppa::new(3)).unwrap().unwrap().seq, second.seq + 1);
    }

    #[test]
    fn read_oob_is_charged_as_a_read() {
        use crate::{Lba, SimTime};
        let mut d = dev();
        d.program_tagged(
            Ppa::new(0),
            Bytes::from_static(b"a"),
            crate::OobTag::live(Lba::new(1), SimTime::ZERO),
        )
        .unwrap();
        let before = d.stats().reads;
        assert!(d.read_oob(Ppa::new(0)).unwrap().is_some());
        assert_eq!(
            d.read_oob(Ppa::new(1)).unwrap(),
            None,
            "erased spare reads blank"
        );
        assert_eq!(d.stats().reads, before + 2);
    }

    #[test]
    fn power_cut_latches_and_power_cycle_recovers() {
        use crate::{Lba, SimTime};
        let mut d = dev();
        let mut plan = FaultPlan::new();
        plan.power_cut_after(2);
        d.set_fault_plan(plan);
        let tag = crate::OobTag::live(Lba::new(0), SimTime::ZERO);
        d.program_tagged(Ppa::new(0), Bytes::from_static(b"a"), tag)
            .unwrap();
        // Second mutation triggers the cut without being applied.
        assert_eq!(
            d.program_tagged(Ppa::new(1), Bytes::from_static(b"b"), tag),
            Err(NandError::PowerLoss)
        );
        assert!(d.is_powered_off());
        assert_eq!(d.page_state(Ppa::new(1)).unwrap(), PageState::Free);
        // Everything fails while latched off, reads included.
        assert_eq!(d.read(Ppa::new(0)), Err(NandError::PowerLoss));
        assert_eq!(d.erase(Pba::new(1)), Err(NandError::PowerLoss));
        assert_eq!(d.stats().injected_faults, 1, "only the cut itself fired");
        assert!(d.stats().failures >= 3);
        // Power-cycle: data and OOB persist, validity degrades to Invalid.
        d.power_cut();
        assert!(!d.is_powered_off());
        assert_eq!(d.page_state(Ppa::new(0)).unwrap(), PageState::Invalid);
        assert_eq!(d.read(Ppa::new(0)).unwrap().as_ref(), b"a");
        let oob = d.oob(Ppa::new(0)).unwrap().unwrap();
        // The sequence counter continues past the surviving maximum.
        d.program_tagged(Ppa::new(1), Bytes::from_static(b"b"), tag)
            .unwrap();
        assert!(d.oob(Ppa::new(1)).unwrap().unwrap().seq > oob.seq);
    }

    #[test]
    fn scheduler_records_per_command_latency() {
        let mut d = dev();
        assert_eq!(d.sched_mode(), SchedMode::OutOfOrder);
        d.set_now(SimTime::from_secs(1));
        d.program(Ppa::new(0), Bytes::from_static(b"a")).unwrap();
        d.read(Ppa::new(0)).unwrap();
        d.sync();
        let snap = d.latency_snapshot();
        assert_eq!(snap.program.count, 1);
        assert_eq!(snap.read.count, 1);
        assert_eq!(snap.total.count, 2);
        // Same-page read-after-program: the read waited for the program.
        assert!(snap.read.max_ns >= 500_000 + 50_000);
        assert_eq!(d.sched_makespan_ns(), d.parallel_busy_ns());
    }

    #[test]
    fn legacy_mode_reports_no_percentiles() {
        let g = Geometry::tiny();
        let mut d = NandDevice::new(NandConfig::new(g).scheduler(SchedMode::Legacy));
        d.program(Ppa::new(0), Bytes::from_static(b"a")).unwrap();
        d.read(Ppa::new(0)).unwrap();
        d.sync();
        assert_eq!(d.latency_snapshot().total.count, 0);
        assert_eq!(d.sched_makespan_ns(), 0);
        assert!(
            d.stats().busy_ns > 0,
            "legacy busy integrals still accumulate"
        );
    }

    #[test]
    fn erase_suspend_device_path_mirrors_integrals() {
        // Program die service (300 µs) shorter than the bus transfer
        // (400 µs) makes the program's completion bus-bound, so the
        // throttled read arrival (400 µs) lands strictly inside the erase
        // pulse that started when the die freed at 300 µs.
        let mut d = NandDevice::new(
            NandConfig::new(Geometry::tiny())
                .program_latency_ns(300_000)
                .bus_transfer_ns(400_000)
                .queue_depth(2)
                .erase_suspend(true),
        );
        d.program(Ppa::new(16), Bytes::from_static(b"x")).unwrap(); // block 1
        d.set_gc_context(true);
        d.erase(Pba::new(0)).unwrap();
        d.set_gc_context(false);
        d.read(Ppa::new(16)).unwrap(); // suspends the in-flight erase
        assert_eq!(d.erases_suspended(), 1);
        assert_eq!(d.stats().erases_suspended, 1);
        assert_eq!(d.stats().suspend_overhead_ns, 50_000);
        // The resume penalty joined both accountings (the per-admit debug
        // asserts in `charge` already verified the vectors match).
        assert_eq!(d.sched_makespan_ns(), d.parallel_busy_ns());
        d.sync();
        let all = d.latency_snapshot();
        let host = d.host_latency_snapshot();
        // Suspended erase: started 300 µs, read runs 400–450 µs, then
        // 2.9 ms remaining pulse + 50 µs resume → ends at 3.4 ms.
        assert_eq!(all.erase.max_ns, 3_400_000);
        assert_eq!(all.erase.count, 1);
        assert_eq!(host.erase.count, 0, "GC-context erase not a host sample");
        assert_eq!(host.total.count, 2, "host program + read");
    }

    #[test]
    fn buffer_provenance_is_classified_at_program() {
        let mut d = dev();
        // A handle the caller still holds: zero-copy, classified shared.
        let kept = Bytes::from(vec![1u8; 4]);
        d.program(Ppa::new(0), kept.clone()).unwrap();
        // Sole ownership handed over: a private allocation, classified
        // copied (the hallmark of a deep-copying data path).
        let private = Bytes::from(vec![2u8; 4]);
        d.program(Ppa::new(1), private).unwrap();
        assert_eq!(d.stats().buffers_shared, 1);
        assert_eq!(d.stats().buffers_copied, 1);
        // Reading back shares the stored buffer rather than copying it.
        let read = d.read(Ppa::new(0)).unwrap();
        assert_eq!(read.as_ref().as_ptr(), kept.as_ref().as_ptr());
    }

    #[test]
    fn captured_commands_expose_schedule_order() {
        let g = Geometry::tiny();
        let mut d = NandDevice::new(NandConfig::new(g).capture_commands(true));
        d.program(Ppa::new(0), Bytes::from_static(b"a")).unwrap();
        d.program(Ppa::new(1), Bytes::from_static(b"b")).unwrap();
        d.read(Ppa::new(0)).unwrap();
        d.sync();
        let mut rec = d.take_captured_commands();
        rec.sort_by_key(|r| r.submit);
        assert_eq!(rec.len(), 3);
        assert_eq!(rec[2].kind, FaultKind::Read);
        // Same-page dependency: the read starts at or after its program.
        assert!(rec[2].start_ns >= rec[0].start_ns);
    }

    #[test]
    fn scan_oob_matches_per_page_reads_and_is_thread_invariant() {
        use crate::{Lba, SimTime};
        let mut d = dev();
        for p in 0..5u64 {
            d.program_tagged(
                Ppa::new(p),
                Bytes::from_static(b"x"),
                crate::OobTag::live(Lba::new(p), SimTime::from_secs(p)),
            )
            .unwrap();
        }
        let die_before = d.stats().die_busy_ns.clone();
        let serial = d.scan_oob(None, 1).unwrap();
        let sharded = d.scan_oob(None, 7).unwrap();
        assert_eq!(serial, sharded, "shard merge must be order-independent");
        assert_eq!(serial.pages_scanned, 5);
        let records: Vec<_> = serial
            .blocks
            .iter()
            .flat_map(|b| b.records.iter().map(|(_, r)| *r))
            .collect();
        assert_eq!(records.len(), 5);
        assert_eq!(records[4].lba, Lba::new(4));
        // Charged as 5 + 5 spare reads in bulk (serial busy only; the
        // per-die vectors and scheduler never see a mount scan).
        assert_eq!(d.stats().reads, 10);
        assert_eq!(d.stats().die_busy_ns, die_before);
    }

    #[test]
    fn scan_oob_baseline_skips_unchanged_prefix_and_flags_erased_blocks() {
        use crate::{Lba, SimTime};
        let mut d = dev();
        let tag = |l: u64| crate::OobTag::live(Lba::new(l), SimTime::ZERO);
        d.program_tagged(Ppa::new(0), Bytes::from_static(b"a"), tag(0))
            .unwrap();
        d.program_tagged(Ppa::new(1), Bytes::from_static(b"b"), tag(1))
            .unwrap();
        let full = d.scan_oob(None, 1).unwrap();
        let baseline: Vec<ScanBaseline> = full
            .blocks
            .iter()
            .map(|b| ScanBaseline {
                erase_count: b.erase_count,
                programmed: b.scanned_to,
            })
            .collect();
        // Tail write in block 0, and block 1 erased+rewritten.
        d.program_tagged(Ppa::new(2), Bytes::from_static(b"c"), tag(2))
            .unwrap();
        let ppb = u64::from(d.geometry().pages_per_block());
        d.program_tagged(Ppa::new(ppb), Bytes::from_static(b"d"), tag(3))
            .unwrap();
        d.erase(Pba::new(1)).unwrap();
        d.program_tagged(Ppa::new(ppb), Bytes::from_static(b"e"), tag(4))
            .unwrap();
        let tail = d.scan_oob(Some(&baseline), 1).unwrap();
        assert_eq!(tail.blocks[0].start, 2, "block 0 scans only its tail");
        assert!(!tail.blocks[0].rescanned);
        assert_eq!(tail.blocks[0].records.len(), 1);
        assert_eq!(tail.blocks[0].records[0].1.lba, Lba::new(2));
        assert!(
            tail.blocks[1].rescanned,
            "erased block forces a full rescan"
        );
        assert_eq!(tail.blocks[1].start, 0);
        assert_eq!(tail.blocks[1].records[0].1.lba, Lba::new(4));
        assert_eq!(tail.pages_scanned, 2);
    }

    #[test]
    fn ckpt_slots_survive_power_cut_and_tear_on_mid_write_cut() {
        let mut d = dev();
        d.ckpt_erase(0).unwrap();
        d.ckpt_append(0, Bytes::from_static(b"page0")).unwrap();
        d.ckpt_append(0, Bytes::from_static(b"page1")).unwrap();
        // Cut power in the middle of writing slot 1: erase lands, only one
        // of two pages does.
        let mut plan = FaultPlan::new();
        plan.power_cut_after(3);
        d.set_fault_plan(plan);
        d.ckpt_erase(1).unwrap();
        d.ckpt_append(1, Bytes::from_static(b"new0")).unwrap();
        assert_eq!(
            d.ckpt_append(1, Bytes::from_static(b"new1")),
            Err(NandError::PowerLoss)
        );
        assert!(d.is_powered_off());
        assert_eq!(d.ckpt_read(0), Err(NandError::PowerLoss));
        assert_eq!(d.scan_oob(None, 1), Err(NandError::PowerLoss));
        d.power_cut();
        // The old checkpoint survived intact; the torn one holds a prefix.
        assert_eq!(d.ckpt_read(0).unwrap().len(), 2);
        assert_eq!(d.ckpt_peek(1), &[Bytes::from_static(b"new0")]);
        assert_eq!(d.stats().injected_faults, 1);
    }

    #[test]
    fn ckpt_pages_are_bounded_by_page_size() {
        let g = Geometry::builder().page_size(4).build();
        let mut d = NandDevice::new(NandConfig::new(g));
        assert!(matches!(
            d.ckpt_append(0, Bytes::from_static(b"12345")),
            Err(NandError::PayloadTooLarge { .. })
        ));
    }

    #[test]
    fn last_seq_tracks_tagged_programs() {
        use crate::{Lba, SimTime};
        let mut d = dev();
        assert_eq!(d.last_seq(), 0);
        d.program_tagged(
            Ppa::new(0),
            Bytes::from_static(b"a"),
            crate::OobTag::live(Lba::new(0), SimTime::ZERO),
        )
        .unwrap();
        let seq = d.oob(Ppa::new(0)).unwrap().unwrap().seq;
        assert_eq!(d.last_seq(), seq);
    }

    #[test]
    fn block_view_reports_counts() {
        let mut d = dev();
        d.program(Ppa::new(0), Bytes::from_static(b"a")).unwrap();
        d.program(Ppa::new(1), Bytes::from_static(b"b")).unwrap();
        d.invalidate(Ppa::new(0)).unwrap();
        let b = d.block(Pba::new(0)).unwrap();
        assert_eq!(b.valid_pages(), 1);
        assert_eq!(b.invalid_pages(), 1);
    }
}
