//! Property tests for the NAND device: physical constraints hold under
//! arbitrary operation sequences, and data is exactly what was programmed.

use bytes::Bytes;
use insider_nand::{FaultKind, FaultPlan, Geometry, NandConfig, NandDevice, NandError, Pba, Ppa};
use proptest::prelude::*;
use std::collections::HashMap;

fn geometry() -> Geometry {
    Geometry::builder()
        .blocks_per_chip(8)
        .pages_per_block(4)
        .page_size(16)
        .build()
}

#[derive(Debug, Clone)]
enum Op {
    Program { ppa: u8, tag: u8 },
    Read { ppa: u8 },
    Erase { pba: u8 },
    Invalidate { ppa: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u8..32, any::<u8>()).prop_map(|(ppa, tag)| Op::Program { ppa, tag }),
        3 => (0u8..32).prop_map(|ppa| Op::Read { ppa }),
        1 => (0u8..8).prop_map(|pba| Op::Erase { pba }),
        1 => (0u8..32).prop_map(|ppa| Op::Invalidate { ppa }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A shadow model tracks what each page should hold; the device must
    /// agree after every operation, and reject exactly the operations the
    /// model says are illegal.
    #[test]
    fn device_matches_shadow_model(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let mut dev = NandDevice::new(NandConfig::new(geometry()));
        // page -> Some(tag) once programmed; write pointer per block.
        let mut data: HashMap<u8, u8> = HashMap::new();
        let mut wptr = [0u8; 8];

        for op in &ops {
            match *op {
                Op::Program { ppa, tag } => {
                    let block = ppa / 4;
                    let offset = ppa % 4;
                    let result = dev.program(Ppa::new(ppa as u64), Bytes::copy_from_slice(&[tag]));
                    if offset == wptr[block as usize] && wptr[block as usize] < 4 {
                        prop_assert!(result.is_ok(), "in-order program must succeed");
                        data.insert(ppa, tag);
                        wptr[block as usize] += 1;
                    } else {
                        prop_assert!(result.is_err(), "out-of-order/in-place program must fail");
                    }
                }
                Op::Read { ppa } => {
                    let result = dev.read(Ppa::new(ppa as u64));
                    match data.get(&ppa) {
                        Some(tag) => {
                            let data = result.unwrap();
                            prop_assert_eq!(data.as_ref(), &[*tag]);
                        }
                        None => {
                            prop_assert!(matches!(result, Err(NandError::ReadUnwritten(_))));
                        }
                    }
                }
                Op::Erase { pba } => {
                    dev.erase(Pba::new(pba as u32)).unwrap();
                    for off in 0..4u8 {
                        data.remove(&(pba * 4 + off));
                    }
                    wptr[pba as usize] = 0;
                }
                Op::Invalidate { ppa } => {
                    // Bookkeeping only: never destroys data.
                    dev.invalidate(Ppa::new(ppa as u64)).unwrap();
                }
            }
        }
        // Wear accounting is consistent.
        prop_assert_eq!(
            dev.total_erases(),
            ops.iter().filter(|o| matches!(o, Op::Erase { .. })).count() as u64
        );
    }

    /// Invalidate/revalidate cycles never make data readable that was not
    /// programmed, nor lose data that was.
    #[test]
    fn invalidate_revalidate_preserve_payloads(tags in prop::collection::vec(any::<u8>(), 1..4)) {
        let mut dev = NandDevice::new(NandConfig::new(geometry()));
        for (i, tag) in tags.iter().enumerate() {
            dev.program(Ppa::new(i as u64), Bytes::copy_from_slice(&[*tag])).unwrap();
        }
        for (i, tag) in tags.iter().enumerate() {
            dev.invalidate(Ppa::new(i as u64)).unwrap();
            let while_invalid = dev.read(Ppa::new(i as u64)).unwrap();
            prop_assert_eq!(while_invalid.as_ref(), &[*tag]);
            dev.revalidate(Ppa::new(i as u64)).unwrap();
            let after_revalidate = dev.read(Ppa::new(i as u64)).unwrap();
            prop_assert_eq!(after_revalidate.as_ref(), &[*tag]);
        }
    }

    /// Bulk revalidation is exactly per-page revalidation: same final page
    /// states, and an out-of-range address in the batch changes nothing.
    #[test]
    fn revalidate_many_matches_singles(tags in prop::collection::vec(any::<u8>(), 1..8)) {
        let mut bulk = NandDevice::new(NandConfig::new(geometry()));
        let mut single = NandDevice::new(NandConfig::new(geometry()));
        let ppas: Vec<Ppa> = (0..tags.len() as u64).map(Ppa::new).collect();
        for (dev, _) in [(&mut bulk, 0), (&mut single, 0)] {
            for (i, tag) in tags.iter().enumerate() {
                dev.program(Ppa::new(i as u64), Bytes::copy_from_slice(&[*tag])).unwrap();
            }
            // Invalidate every other page; revalidation must restore only
            // those without touching still-valid neighbours.
            for ppa in ppas.iter().step_by(2) {
                dev.invalidate(*ppa).unwrap();
            }
        }
        let before: Vec<_> = ppas.iter().map(|p| single.read(*p).unwrap()).collect();
        bulk.revalidate_many(&ppas).unwrap();
        for ppa in &ppas {
            single.revalidate(*ppa).unwrap();
        }
        for (i, ppa) in ppas.iter().enumerate() {
            prop_assert_eq!(bulk.read(*ppa).unwrap(), single.read(*ppa).unwrap());
            prop_assert_eq!(bulk.read(*ppa).unwrap(), before[i].clone());
        }
        // All-or-nothing address check: a batch containing an out-of-range
        // address is rejected before any state changes.
        let g = geometry();
        let out_of_range = Ppa::new(g.total_pages());
        prop_assert!(bulk.revalidate_many(&[ppas[0], out_of_range]).is_err());
    }

    /// Injected faults fail exactly the scheduled op and leave the device
    /// usable; the failed program does not advance the write pointer.
    #[test]
    fn injected_program_fault_is_recoverable(nth in 1u64..5) {
        let mut dev = NandDevice::new(NandConfig::new(geometry()));
        let mut plan = FaultPlan::new();
        plan.fail_nth(FaultKind::Program, nth);
        dev.set_fault_plan(plan);

        let mut programmed = Vec::new();
        let mut next = 0u64;
        for attempt in 0..6u64 {
            let payload = Bytes::copy_from_slice(&[attempt as u8]);
            match dev.program(Ppa::new(next), payload) {
                Ok(()) => {
                    programmed.push((next, attempt as u8));
                    next += 1;
                }
                Err(NandError::InjectedFault(_)) => {
                    // Retry the same page: in-order pointer must not have moved.
                    dev.program(Ppa::new(next), Bytes::copy_from_slice(&[attempt as u8]))
                        .unwrap();
                    programmed.push((next, attempt as u8));
                    next += 1;
                }
                Err(e) => prop_assert!(false, "unexpected error {e}"),
            }
        }
        for (ppa, tag) in programmed {
            let data = dev.read(Ppa::new(ppa)).unwrap();
            prop_assert_eq!(data.as_ref(), &[tag]);
        }
        prop_assert_eq!(dev.stats().failures, 1);
    }
}
