//! Property tests over the scenario builder: every Table I scenario, for
//! any seed and duration, yields a well-formed run — sorted trace, in-bounds
//! addresses, labels consistent with the active period, and ransomware
//! activity actually present when the scenario includes one.

use insider_detect::IoMode;
use insider_nand::SimTime;
use insider_workloads::{table1, FileSpaceConfig};
use proptest::prelude::*;

fn compact_space() -> FileSpaceConfig {
    FileSpaceConfig {
        total_blocks: 120_000,
        documents: 50,
        doc_blocks: (4, 64),
        media: 2,
        media_blocks: (128, 512),
        system: 10,
        system_blocks: (2, 16),
        database_blocks: 1_024,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_scenario_builds_well_formed_runs(
        row in 0usize..25,
        seed in any::<u64>(),
        duration_s in 5u64..25,
    ) {
        let scenario = table1()[row];
        let duration = SimTime::from_secs(duration_s);
        let run = scenario.build_with_space(seed, duration, &compact_space());

        // Time-ordered, in-bounds.
        prop_assert!(run.trace.is_sorted());
        for req in &run.trace {
            prop_assert!(
                req.end().index() <= run.space.total_blocks(),
                "request {req} beyond the space"
            );
        }

        match (scenario.ransomware, run.active) {
            (Some(_), Some(active)) => {
                prop_assert!(active.start < active.end);
                // The attack starts in the first third, as documented.
                prop_assert!(active.start.as_micros() <= duration.as_micros() / 3);
                // Destructive traffic exists inside the active period.
                let destructive_inside = run
                    .trace
                    .iter()
                    .any(|r| r.mode.is_destructive() && active.contains(r.time));
                prop_assert!(destructive_inside, "no attack I/O inside the active period");
                // Labels align with the period.
                let slice = SimTime::from_secs(1);
                let first = active.start.as_micros() / 1_000_000;
                prop_assert!(run.label(first, slice));
            }
            (None, None) => {
                for s in 0..duration_s {
                    prop_assert!(!run.label(s, SimTime::from_secs(1)));
                }
            }
            (expected, got) => {
                prop_assert!(
                    false,
                    "scenario ransomware {:?} but active period {:?}",
                    expected,
                    got
                );
            }
        }
    }

    #[test]
    fn in_place_families_only_write_where_they_read(
        seed in any::<u64>(),
    ) {
        use insider_workloads::{FileSpace, OverwriteClass, RansomwareKind};
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let space = FileSpace::generate(&mut rng, &compact_space());
        for kind in RansomwareKind::ALL {
            let model = kind.model();
            if model.class != OverwriteClass::InPlace {
                continue;
            }
            let trace = model.generate(&mut rng, &space, SimTime::from_secs(8));
            let mut read = std::collections::HashSet::new();
            for req in &trace {
                match req.mode {
                    IoMode::Read => read.extend(req.blocks().map(|l| l.index())),
                    IoMode::Write => {
                        for b in req.blocks() {
                            prop_assert!(
                                read.contains(&b.index()),
                                "{kind}: in-place write to unread {b}"
                            );
                        }
                    }
                    IoMode::Trim => prop_assert!(false, "{kind}: in-place family must not trim"),
                }
            }
        }
    }

    #[test]
    fn benign_apps_without_rmw_never_overwrite_read_blocks(
        seed in any::<u64>(),
        duration_s in 5u64..15,
    ) {
        use insider_workloads::{AppKind, FileSpace};
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let space = FileSpace::generate(&mut rng, &compact_space());
        // These apps are defined to produce no read-modify-write traffic.
        for app in [AppKind::P2pDownload, AppKind::VideoDecode, AppKind::Compression] {
            let trace = app.model().generate(&mut rng, &space, SimTime::from_secs(duration_s));
            let mut read = std::collections::HashSet::new();
            for req in &trace {
                match req.mode {
                    IoMode::Read => read.extend(req.blocks().map(|l| l.index())),
                    IoMode::Write | IoMode::Trim => {
                        for b in req.blocks() {
                            prop_assert!(
                                !read.contains(&b.index()),
                                "{app}: unexpected overwrite of a read block"
                            );
                        }
                    }
                }
            }
        }
    }
}
