//! Profile regression tests: the detection results (paper Fig. 7) depend on
//! each workload generator staying in its tuned feature band. These tests
//! pin the bands so an innocent-looking pacing change that would silently
//! wreck the detector's training balance fails loudly here instead.

use insider_detect::{FeatureEngine, FeatureVector};
use insider_nand::SimTime;
use insider_workloads::{AppKind, FileSpace, FileSpaceConfig, RansomwareKind, Trace};
use rand::SeedableRng;

fn series(trace: &Trace) -> Vec<FeatureVector> {
    let mut engine = FeatureEngine::new(SimTime::from_secs(1), 10);
    let mut out = Vec::new();
    for req in trace {
        out.extend(engine.ingest(*req).into_iter().map(|(_, f)| f));
    }
    out.extend(
        engine
            .flush_until(trace.duration() + SimTime::from_secs(2))
            .into_iter()
            .map(|(_, f)| f),
    );
    out
}

fn mean(xs: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = xs.collect();
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

fn app_series(kind: AppKind, seed: u64) -> Vec<FeatureVector> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let space = FileSpace::generate(&mut rng, &FileSpaceConfig::default());
    let trace = kind
        .model()
        .generate(&mut rng, &space, SimTime::from_secs(40));
    series(&trace)
}

fn ransom_series(kind: RansomwareKind, seed: u64) -> Vec<FeatureVector> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let space = FileSpace::generate(&mut rng, &FileSpaceConfig::default());
    let trace = kind
        .model()
        .generate(&mut rng, &space, SimTime::from_secs(40));
    series(&trace)
}

#[test]
fn zero_overwrite_apps_stay_at_zero() {
    // These apps are modeled with no read-modify-write at all; a single
    // overwrite means a generator regression.
    for kind in [
        AppKind::P2pDownload,
        AppKind::VideoDecode,
        AppKind::Compression,
    ] {
        let s = app_series(kind, 1);
        let owio = mean(s.iter().map(|f| f.owio));
        assert_eq!(
            owio, 0.0,
            "{kind} must not overwrite (got mean OWIO {owio})"
        );
    }
}

#[test]
fn stress_tools_have_negligible_overwrite_density() {
    // Random 4-KiB I/O over a 512 GB-scale space: accidental collisions
    // only. A jump here means the space shrank or the op pattern changed.
    for kind in [AppKind::IoMeter, AppKind::DiskMark, AppKind::HdTunePro] {
        let s = app_series(kind, 2);
        let owio = mean(s.iter().map(|f| f.owio));
        let io = mean(s.iter().map(|f| f.io));
        assert!(io > 200.0, "{kind} must stay busy (mean IO {io})");
        assert!(
            owio < 0.05 * io,
            "{kind}: overwrites must be accidental ({owio:.1} of {io:.1})"
        );
    }
}

#[test]
fn wiper_band() {
    let s = app_series(AppKind::DataWiping, 3);
    let owio = mean(s.iter().map(|f| f.owio));
    let avgwio = mean(s.iter().map(|f| f.avgwio));
    assert!(
        (20.0..300.0).contains(&owio),
        "wiper overwrite rate drifted: {owio:.1}/s"
    );
    assert!(
        avgwio > 100.0,
        "wiper runs must be long (AVGWIO {avgwio:.1}) — that's what separates it"
    );
}

#[test]
fn database_band() {
    let s = app_series(AppKind::Database, 4);
    let owio = mean(s.iter().map(|f| f.owio));
    let avgwio = mean(s.iter().map(|f| f.avgwio));
    assert!(
        (50.0..800.0).contains(&owio),
        "DB overwrite rate drifted: {owio:.1}/s"
    );
    assert!(
        avgwio > 60.0,
        "DB updates must overwrite long runs (AVGWIO {avgwio:.1})"
    );
}

#[test]
fn ransomware_bands() {
    // (family, min mean OWIO during its run, max AVGWIO)
    let expectations = [
        (RansomwareKind::WannaCry, 100.0),
        (RansomwareKind::Mole, 100.0),
        (RansomwareKind::GlobeImposter, 40.0),
        (RansomwareKind::Jaff, 20.0),
        (RansomwareKind::CryptoShield, 10.0),
    ];
    for (kind, min_owio) in expectations {
        let s = ransom_series(kind, 5);
        let owio = mean(s.iter().map(|f| f.owio));
        let avgwio = mean(s.iter().map(|f| f.avgwio));
        assert!(
            owio >= min_owio,
            "{kind}: mean OWIO {owio:.1} fell below its band ({min_owio})"
        );
        assert!(
            avgwio < 60.0,
            "{kind}: AVGWIO {avgwio:.1} must stay document-short (< 60)"
        );
    }
}

#[test]
fn speed_ordering_matches_the_paper() {
    // Fig. 1(b)'s ordering: WannaCry/Mole fastest, CryptoShield slowest.
    let total = |k: RansomwareKind| -> f64 { ransom_series(k, 6).iter().map(|f| f.owio).sum() };
    let wannacry = total(RansomwareKind::WannaCry);
    let mole = total(RansomwareKind::Mole);
    let jaff = total(RansomwareKind::Jaff);
    let cryptoshield = total(RansomwareKind::CryptoShield);
    assert!(
        wannacry > jaff,
        "WannaCry ({wannacry}) must outpace Jaff ({jaff})"
    );
    assert!(
        mole > cryptoshield,
        "Mole ({mole}) must outpace CryptoShield ({cryptoshield})"
    );
    assert!(
        jaff > cryptoshield,
        "Jaff ({jaff}) must outpace CryptoShield ({cryptoshield})"
    );
}
