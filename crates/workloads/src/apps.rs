//! Header-level models of the background applications of Table I.

use crate::filespace::{FileKind, FileSpace};
use crate::trace::Trace;
use insider_detect::{IoMode, IoReq};
use insider_nand::{Lba, SimTime};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The background applications the paper runs alongside ransomware,
/// spanning its four categories (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AppKind {
    /// WPM data wiper satisfying DoD 5220.22-M: seven overwrite passes per
    /// read over long sequential runs. The paper's hardest false-alarm case.
    DataWiping,
    /// MySQL-style heavy database update: random in-place page rewrites plus
    /// sequential log appends.
    Database,
    /// Dropbox-style cloud synchronization: bulk new-file writes plus small
    /// metadata read-modify-writes.
    CloudStorage,
    /// IOMeter: high-rate mixed random reads/writes.
    IoMeter,
    /// CrystalDiskMark-style sweep: alternating sequential and random phases.
    DiskMark,
    /// HD Tune Pro: surface-scan reads plus scattered write probes.
    HdTunePro,
    /// Bandizip compression: sequential read of a large source, sequential
    /// archive write (CPU-bound pace).
    Compression,
    /// Video encoding (Daum PotEncoder): slow sequential read, new-file write.
    VideoEncode,
    /// Video playback (Daum PotPlayer): pure sequential reads.
    VideoDecode,
    /// Software installation (AutoCAD / Visual Studio): many new files plus
    /// a few config overwrites.
    Install,
    /// MS Windows update: download plus system-file replacement.
    WindowsUpdate,
    /// Outlook mailbox synchronization: PST read-modify-write bursts.
    OutlookSync,
    /// BitTorrent download: out-of-order plain writes, no preceding reads.
    P2pDownload,
    /// Chrome web browsing: small cache writes and reads.
    WebSurfing,
    /// KakaoTalk-style SQLite activity: tiny transactions.
    SqliteApp,
}

impl AppKind {
    /// All application kinds.
    pub const ALL: [AppKind; 15] = [
        AppKind::DataWiping,
        AppKind::Database,
        AppKind::CloudStorage,
        AppKind::IoMeter,
        AppKind::DiskMark,
        AppKind::HdTunePro,
        AppKind::Compression,
        AppKind::VideoEncode,
        AppKind::VideoDecode,
        AppKind::Install,
        AppKind::WindowsUpdate,
        AppKind::OutlookSync,
        AppKind::P2pDownload,
        AppKind::WebSurfing,
        AppKind::SqliteApp,
    ];

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            AppKind::DataWiping => "WPM (DataWiping)",
            AppKind::Database => "MySQL (Database)",
            AppKind::CloudStorage => "Dropbox (CloudStorage)",
            AppKind::IoMeter => "IOMeter (IOStress)",
            AppKind::DiskMark => "DiskMark (IOStress)",
            AppKind::HdTunePro => "hdtunepro (IOStress)",
            AppKind::Compression => "Bandizip (Compression)",
            AppKind::VideoEncode => "PotEncoder (VideoEncode)",
            AppKind::VideoDecode => "PotPlayer (VideoDecode)",
            AppKind::Install => "AutoCAD/VS (Install)",
            AppKind::WindowsUpdate => "WindowUpdate",
            AppKind::OutlookSync => "OutlookSync",
            AppKind::P2pDownload => "BitTorrent (P2PDown)",
            AppKind::WebSurfing => "Chrome (WebSurfing)",
            AppKind::SqliteApp => "Kakaotalk (SQLite)",
        }
    }

    /// How much this app slows a concurrently running ransomware down —
    /// the paper's CPU- and IO-intensive apps starve it of cycles and
    /// bandwidth (§V-B: "they interfered with ransomware to slow down the
    /// speed of overwriting").
    pub fn ransomware_slowdown(self) -> f64 {
        match self {
            AppKind::IoMeter | AppKind::DiskMark | AppKind::HdTunePro => 2.0,
            AppKind::Compression | AppKind::VideoEncode => 2.0,
            AppKind::DataWiping | AppKind::Database => 1.2,
            _ => 1.1,
        }
    }

    /// The trace model for this app.
    pub fn model(self) -> AppModel {
        AppModel { kind: self }
    }
}

impl std::fmt::Display for AppKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Trace generator for one background application.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AppModel {
    /// Which app this models.
    pub kind: AppKind,
}

// Payload-entropy stamps per content kind, in milli-bits/byte. Constant per
// generator pass — stamping draws no RNG values, so request streams stay
// byte-identical to the unstamped generators. Values follow measured
// byte-entropy of the corresponding real content under 1 KiB sampling
// (DESIGN.md §14 records the modeling choices).
/// DoD pass 0: pseudorandom filler — essentially maximal entropy.
const WIPE_RANDOM_PASS_MILLI: u16 = 7990;
/// DoD passes 1–6: fixed bit patterns (0x00/0xFF/alternating).
const WIPE_PATTERN_PASS_MILLI: u16 = 20;
/// InnoDB-style table pages: structured rows, some compressed columns.
const DB_PAGE_MILLI: u16 = 4200;
/// Write-ahead log records.
const DB_WAL_MILLI: u16 = 5000;
/// Cloud-sync downloads: mostly already-compressed user content.
const CLOUD_UPLOAD_MILLI: u16 = 7600;
/// Cloud-sync index/metadata pages.
const CLOUD_INDEX_MILLI: u16 = 4500;
/// Stress tools write repeating test patterns, not random data (a modeling
/// choice documented in DESIGN.md §14: IOMeter/DiskMark default to
/// pattern buffers).
const IO_STRESS_MILLI: u16 = 1500;
/// Archive output: compressed, near-maximal entropy — but written to
/// *fresh* LBAs, which is what keeps RHEW at zero for it.
const ARCHIVE_MILLI: u16 = 7850;
/// Encoded video: compressed frames.
const VIDEO_ENCODE_MILLI: u16 = 7300;
/// Installer payloads: mixed binaries/resources, partially compressed.
const INSTALL_MILLI: u16 = 5500;
/// PST pages: mail text plus attachments.
const OUTLOOK_MILLI: u16 = 4800;
/// BitTorrent pieces: compressed media, fresh preallocated LBAs.
const P2P_MILLI: u16 = 7800;
/// Browser cache bodies: mixed compressed/plain; deliberately below the
/// RHEW gate because cache slots are recycled at random offsets.
const WEB_CACHE_MILLI: u16 = 6300;
/// Browser history/cookie sqlite pages.
const WEB_DB_MILLI: u16 = 4500;
/// Messenger sqlite pages: mostly small text rows.
const SQLITE_MILLI: u16 = 4000;

/// Pacing/book-keeping shared by the generators.
struct Gen<'a, R: Rng> {
    rng: &'a mut R,
    trace: Trace,
    now: SimTime,
    end: SimTime,
    /// Entropy stamp attached to destructive requests until changed.
    write_entropy: Option<u16>,
}

impl<'a, R: Rng> Gen<'a, R> {
    fn new(rng: &'a mut R, duration: SimTime) -> Self {
        Gen {
            rng,
            trace: Trace::new(),
            now: SimTime::ZERO,
            end: duration,
            write_entropy: None,
        }
    }

    fn done(&self) -> bool {
        self.now >= self.end
    }

    /// Sets the payload-entropy stamp for subsequent writes.
    fn payload(&mut self, milli: u16) {
        self.write_entropy = Some(milli);
    }

    fn emit(&mut self, lba: Lba, mode: IoMode, len: u32, step_us: u64) {
        let mut req = IoReq::new(self.now, lba, mode, len);
        if mode.is_destructive() {
            if let Some(milli) = self.write_entropy {
                req = req.with_entropy_milli(milli);
            }
        }
        self.trace.push(req);
        self.now = self.now.plus_micros(step_us.max(1));
    }

    fn idle(&mut self, us: u64) {
        self.now = self.now.plus_micros(us);
    }

    /// Sequential read of `[start, start+blocks)` in `chunk`-block requests.
    fn seq(&mut self, start: Lba, blocks: u32, chunk: u32, mode: IoMode, step_us: u64) {
        let mut off = 0u32;
        while off < blocks && !self.done() {
            let len = chunk.min(blocks - off);
            self.emit(start.offset(off as u64), mode, len, step_us);
            off += len;
        }
    }
}

impl AppModel {
    /// Generates this app's trace over `space` for `duration`, starting at
    /// time zero.
    pub fn generate(&self, rng: &mut impl Rng, space: &FileSpace, duration: SimTime) -> Trace {
        let mut g = Gen::new(rng, duration);
        match self.kind {
            AppKind::DataWiping => wiper(&mut g, space),
            AppKind::Database => database(&mut g, space),
            AppKind::CloudStorage => cloud(&mut g, space),
            AppKind::IoMeter => io_stress(&mut g, space, 0.5, false),
            AppKind::DiskMark => io_stress(&mut g, space, 0.4, true),
            AppKind::HdTunePro => io_stress(&mut g, space, 0.9, true),
            AppKind::Compression => compress(&mut g, space),
            AppKind::VideoEncode => video(&mut g, space, true),
            AppKind::VideoDecode => video(&mut g, space, false),
            AppKind::Install => install(&mut g, space, 0.02),
            AppKind::WindowsUpdate => install(&mut g, space, 0.06),
            AppKind::OutlookSync => outlook(&mut g, space),
            AppKind::P2pDownload => p2p(&mut g, space),
            AppKind::WebSurfing => web(&mut g, space),
            AppKind::SqliteApp => sqlite(&mut g, space),
        }
        g.trace
    }
}

/// DoD 5220.22-M wiper: verify-read a long run, then overwrite it 7 times.
fn wiper<R: Rng>(g: &mut Gen<'_, R>, space: &FileSpace) {
    let files: Vec<_> = space.all_files().to_vec();
    'outer: loop {
        for file in &files {
            if g.done() {
                break 'outer;
            }
            // One verification read pass…
            g.seq(file.start, file.blocks, 32, IoMode::Read, 160_000);
            // …then the seven DoD overwrite passes. The pace (a 32-block
            // request every 320 ms ≈ 0.4 MB/s of 7-pass wiping) keeps the
            // wiper's cumulative overwrite curve in the same range as the
            // ransomware curves, as in the paper's Fig. 1(b). Pass 0 is the
            // random pass; the rest write fixed patterns.
            for pass in 0..7 {
                g.payload(if pass == 0 {
                    WIPE_RANDOM_PASS_MILLI
                } else {
                    WIPE_PATTERN_PASS_MILLI
                });
                g.seq(file.start, file.blocks, 32, IoMode::Write, 320_000);
            }
        }
        if files.is_empty() {
            break;
        }
    }
}

/// MySQL-style update load: random page read-modify-writes inside the DB
/// region in medium-length runs, plus sequential log appends.
fn database<R: Rng>(g: &mut Gen<'_, R>, space: &FileSpace) {
    let db = space.database();
    let mut log_cursor = space.free_start();
    while !g.done() {
        // A bulk update touches a long run of consecutive pages — unlike
        // ransomware's short document-sized runs, which is what AVGWIO
        // separates on (paper §III-A).
        let run = g.rng.random_range(96..=160u32);
        let max_start = (db.blocks - run) as u64;
        let start = db.start.offset(g.rng.random_range(0..=max_start));
        g.seq(start, run, 16, IoMode::Read, 200);
        g.payload(DB_PAGE_MILLI);
        g.seq(start, run, 16, IoMode::Write, 200);
        // WAL append.
        g.payload(DB_WAL_MILLI);
        g.emit(log_cursor, IoMode::Write, 4, 200);
        log_cursor = log_cursor.offset(4);
        let pause = g.rng.random_range(500_000..900_000);
        g.idle(pause);
    }
}

/// Dropbox-style sync: download new file versions into the free region,
/// with small index read-modify-writes in between.
fn cloud<R: Rng>(g: &mut Gen<'_, R>, space: &FileSpace) {
    let mut cursor = space.free_start();
    let db = space.database();
    while !g.done() {
        let blocks = g.rng.random_range(16..256u32);
        g.payload(CLOUD_UPLOAD_MILLI);
        g.seq(cursor, blocks, 16, IoMode::Write, 500);
        cursor = cursor.offset(blocks as u64);
        // Index update: tiny read-modify-write.
        let at = db.start.offset(g.rng.random_range(0..db.blocks as u64 - 2));
        g.seq(at, 2, 2, IoMode::Read, 200);
        g.payload(CLOUD_INDEX_MILLI);
        g.seq(at, 2, 2, IoMode::Write, 200);
        let pause = g.rng.random_range(50_000..400_000);
        g.idle(pause);
    }
}

/// IO stress tools: saturating mixed random traffic. `read_ratio` sets the
/// read/write mix; `sweep` adds sequential phases (DiskMark/HDTune style).
fn io_stress<R: Rng>(g: &mut Gen<'_, R>, space: &FileSpace, read_ratio: f64, sweep: bool) {
    let total = space.total_blocks();
    g.payload(IO_STRESS_MILLI);
    loop {
        if sweep {
            // Sequential phase over a random 1-MiB window.
            let start = Lba::new(g.rng.random_range(0..total - 256));
            let mode = if g.rng.random::<f64>() < read_ratio {
                IoMode::Read
            } else {
                IoMode::Write
            };
            g.seq(start, 256, 32, mode, 100);
        }
        // Random phase: classic 4-KiB random I/O at ~1.3k IOPS — the same
        // drive-relative pressure as a saturating stress tool on the
        // paper's 512 GB card. Single-block requests keep the read coverage
        // of the LBA space realistic; a stress tool's overwrites come from
        // rare accidental write-after-read collisions, not systematic
        // overwriting.
        for _ in 0..512 {
            if g.done() {
                return;
            }
            let lba = Lba::new(g.rng.random_range(0..total - 8));
            let mode = if g.rng.random::<f64>() < read_ratio {
                IoMode::Read
            } else {
                IoMode::Write
            };
            g.emit(lba, mode, 1, 750);
        }
        if g.done() {
            return;
        }
    }
}

/// Compression: sequentially read a media source, write the archive.
fn compress<R: Rng>(g: &mut Gen<'_, R>, space: &FileSpace) {
    let mut cursor = space.free_start();
    g.payload(ARCHIVE_MILLI);
    while !g.done() {
        let src = space.pick(g.rng, FileKind::Media);
        let mut off = 0u32;
        while off < src.blocks && !g.done() {
            let len = 32.min(src.blocks - off);
            g.seq(src.start.offset(off as u64), len, 32, IoMode::Read, 10_000);
            // Compressed output ~60 % of input; the pace is CPU-bound
            // (compression, not the disk, is the bottleneck).
            let out = (len * 6 / 10).max(1);
            g.seq(cursor, out, 32, IoMode::Write, 20_000);
            cursor = cursor.offset(out as u64);
            off += len;
        }
        g.idle(200_000);
    }
}

/// Video encode (read + new-file write) or decode (read-only playback).
fn video<R: Rng>(g: &mut Gen<'_, R>, space: &FileSpace, encode: bool) {
    let mut cursor = space.free_start();
    g.payload(VIDEO_ENCODE_MILLI);
    while !g.done() {
        let src = space.pick(g.rng, FileKind::Media);
        let mut off = 0u32;
        while off < src.blocks && !g.done() {
            let len = 16.min(src.blocks - off);
            // Playback/encode paces are frame-rate bound, not disk bound.
            g.seq(src.start.offset(off as u64), len, 16, IoMode::Read, 2_000);
            if encode {
                g.seq(cursor, len / 2 + 1, 16, IoMode::Write, 2_000);
                cursor = cursor.offset(len as u64 / 2 + 1);
            }
            off += len;
            g.idle(20_000);
        }
    }
}

/// Installer / OS update: unpack many new files; occasionally replace a
/// system file (read old then overwrite) with probability `replace_p`.
fn install<R: Rng>(g: &mut Gen<'_, R>, space: &FileSpace, replace_p: f64) {
    let mut cursor = space.free_start();
    g.payload(INSTALL_MILLI);
    while !g.done() {
        if g.rng.random::<f64>() < replace_p {
            let victim = space.pick(g.rng, FileKind::System);
            g.seq(victim.start, victim.blocks, 8, IoMode::Read, 300);
            g.seq(victim.start, victim.blocks, 8, IoMode::Write, 300);
        } else {
            let blocks = g.rng.random_range(4..128u32);
            g.seq(cursor, blocks, 16, IoMode::Write, 250);
            cursor = cursor.offset(blocks as u64);
        }
        let pause = g.rng.random_range(50_000..300_000);
        g.idle(pause);
    }
}

/// Outlook synchronization: bursts of PST read-modify-write plus appends.
fn outlook<R: Rng>(g: &mut Gen<'_, R>, space: &FileSpace) {
    let db = space.database();
    let mut append = db.start.offset(db.blocks as u64 / 2);
    g.payload(OUTLOOK_MILLI);
    while !g.done() {
        // A sync burst: a couple of messages.
        for _ in 0..g.rng.random_range(1..4) {
            if g.done() {
                return;
            }
            let run = g.rng.random_range(2..6u32);
            let at = db
                .start
                .offset(g.rng.random_range(0..(db.blocks / 2 - run) as u64));
            g.seq(at, run, 4, IoMode::Read, 250);
            g.seq(at, run, 4, IoMode::Write, 250);
            // New message appended.
            g.emit(append, IoMode::Write, 2, 250);
            append = append.offset(2);
        }
        let pause = g.rng.random_range(1_000_000..4_000_000);
        g.idle(pause);
    }
}

/// BitTorrent: pieces arrive in random order as plain writes; no reads.
fn p2p<R: Rng>(g: &mut Gen<'_, R>, space: &FileSpace) {
    let free = space.free_start().index();
    let span = space.total_blocks() - free;
    g.payload(P2P_MILLI);
    while !g.done() {
        // A 16-block piece at a random offset in the preallocated file.
        let at = Lba::new(free + g.rng.random_range(0..span - 16));
        g.seq(at, 16, 16, IoMode::Write, 400);
        let pause = g.rng.random_range(10_000..60_000);
        g.idle(pause);
    }
}

/// Chrome browsing: small cache-file writes and reads, light rate.
fn web<R: Rng>(g: &mut Gen<'_, R>, space: &FileSpace) {
    let free = space.free_start().index();
    let span = space.total_blocks() - free;
    let db = space.database();
    while !g.done() {
        for _ in 0..g.rng.random_range(3..12) {
            if g.done() {
                return;
            }
            let at = Lba::new(free + g.rng.random_range(0..span - 8));
            if g.rng.random::<f64>() < 0.5 {
                let len = g.rng.random_range(1..=8);
                g.payload(WEB_CACHE_MILLI);
                g.emit(at, IoMode::Write, len, 300);
            } else {
                let len = g.rng.random_range(1..=8);
                g.emit(at, IoMode::Read, len, 300);
            }
        }
        // History/cookie sqlite update.
        let at = db.start.offset(g.rng.random_range(0..db.blocks as u64 - 2));
        g.seq(at, 2, 2, IoMode::Read, 200);
        g.payload(WEB_DB_MILLI);
        g.seq(at, 2, 2, IoMode::Write, 200);
        let pause = g.rng.random_range(200_000..1_000_000);
        g.idle(pause);
    }
}

/// KakaoTalk-style SQLite: sparse tiny transactions.
fn sqlite<R: Rng>(g: &mut Gen<'_, R>, space: &FileSpace) {
    let db = space.database();
    g.payload(SQLITE_MILLI);
    while !g.done() {
        let at = db.start.offset(g.rng.random_range(0..db.blocks as u64 - 2));
        g.seq(at, 2, 2, IoMode::Read, 300);
        g.seq(at, 2, 2, IoMode::Write, 300);
        // WAL-style append next to the table pages.
        g.emit(db.start.offset(db.blocks as u64 - 2), IoMode::Write, 1, 300);
        let pause = g.rng.random_range(500_000..2_000_000);
        g.idle(pause);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filespace::FileSpaceConfig;
    use rand::SeedableRng;

    fn setup() -> (rand::rngs::StdRng, FileSpace) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let space = FileSpace::generate(&mut rng, &FileSpaceConfig::default());
        (rng, space)
    }

    #[test]
    fn every_app_generates_nonempty_sorted_bounded_traces() {
        let (mut rng, space) = setup();
        let dur = SimTime::from_secs(10);
        for kind in AppKind::ALL {
            let trace = kind.model().generate(&mut rng, &space, dur);
            assert!(!trace.is_empty(), "{kind} produced an empty trace");
            assert!(trace.is_sorted(), "{kind} trace out of order");
            for req in &trace {
                assert!(
                    req.end().index() <= space.total_blocks(),
                    "{kind} request {req} beyond space"
                );
            }
        }
    }

    #[test]
    fn video_decode_never_writes() {
        let (mut rng, space) = setup();
        let trace = AppKind::VideoDecode
            .model()
            .generate(&mut rng, &space, SimTime::from_secs(10));
        assert!(trace.iter().all(|r| r.mode == IoMode::Read));
    }

    #[test]
    fn p2p_never_reads() {
        let (mut rng, space) = setup();
        let trace = AppKind::P2pDownload
            .model()
            .generate(&mut rng, &space, SimTime::from_secs(10));
        assert!(trace.iter().all(|r| r.mode == IoMode::Write));
    }

    #[test]
    fn wiper_writes_seven_times_per_read() {
        let (mut rng, space) = setup();
        let trace = AppKind::DataWiping
            .model()
            .generate(&mut rng, &space, SimTime::from_secs(10));
        let reads: u64 = trace
            .iter()
            .filter(|r| r.mode == IoMode::Read)
            .map(|r| r.len as u64)
            .sum();
        let writes: u64 = trace
            .iter()
            .filter(|r| r.mode == IoMode::Write)
            .map(|r| r.len as u64)
            .sum();
        let ratio = writes as f64 / reads as f64;
        assert!(
            (5.0..9.0).contains(&ratio),
            "wiper write/read ratio {ratio} should be near 7"
        );
    }

    #[test]
    fn io_stress_is_much_busier_than_web() {
        let (mut rng, space) = setup();
        let dur = SimTime::from_secs(10);
        let stress = AppKind::IoMeter.model().generate(&mut rng, &space, dur);
        let web = AppKind::WebSurfing.model().generate(&mut rng, &space, dur);
        assert!(stress.total_blocks() > 10 * web.total_blocks());
    }

    #[test]
    fn every_destructive_request_is_entropy_stamped() {
        let (mut rng, space) = setup();
        let dur = SimTime::from_secs(10);
        for kind in AppKind::ALL {
            let trace = kind.model().generate(&mut rng, &space, dur);
            for req in &trace {
                if req.mode.is_destructive() {
                    assert!(req.entropy.is_some(), "{kind}: unstamped write {req}");
                } else {
                    assert!(req.entropy.is_none(), "{kind}: stamped read {req}");
                }
            }
        }
    }

    #[test]
    fn entropy_stamps_straddle_the_rhew_gate_plausibly() {
        use insider_detect::HIGH_ENTROPY_MILLI;
        let (mut rng, space) = setup();
        let dur = SimTime::from_secs(10);
        // Compressed-content writers sit above the gate (harmless for RHEW:
        // they write to fresh LBAs)…
        for kind in [AppKind::Compression, AppKind::P2pDownload] {
            let trace = kind.model().generate(&mut rng, &space, dur);
            assert!(trace
                .iter()
                .filter(|r| r.mode.is_destructive())
                .all(|r| r.entropy >= Some(HIGH_ENTROPY_MILLI)));
        }
        // …while structured-data rewriters stay below it.
        for kind in [AppKind::Database, AppKind::SqliteApp, AppKind::WebSurfing] {
            let trace = kind.model().generate(&mut rng, &space, dur);
            assert!(trace
                .iter()
                .filter(|r| r.mode.is_destructive())
                .all(|r| r.entropy < Some(HIGH_ENTROPY_MILLI)));
        }
    }

    #[test]
    fn slowdowns_are_sane() {
        for kind in AppKind::ALL {
            let s = kind.ransomware_slowdown();
            assert!((1.0..=5.0).contains(&s), "{kind} slowdown {s}");
        }
        assert!(AppKind::IoMeter.ransomware_slowdown() > AppKind::WebSurfing.ransomware_slowdown());
    }
}
