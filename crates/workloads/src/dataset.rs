//! The Table I scenario matrix: training and testing combinations of
//! ransomware and background applications.

use crate::apps::AppKind;
use crate::filespace::{FileSpace, FileSpaceConfig};
use crate::mixer::merge;
use crate::ransomware::RansomwareKind;
use crate::trace::{ActivePeriod, Trace};
use insider_nand::SimTime;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The paper's four background-application categories (plus ransomware-only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScenarioClass {
    /// Ransomware with no background traffic.
    RansomOnly,
    /// Background app with a high overwrite rate (wiper, DB, cloud sync).
    HeavyOverwriting,
    /// IO stress tools saturating the drive.
    IoIntensive,
    /// CPU-heavy apps (compression, video encode) that starve ransomware.
    CpuIntensive,
    /// Ordinary desktop activity.
    NormalApp,
}

impl ScenarioClass {
    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            ScenarioClass::RansomOnly => "Ransom only",
            ScenarioClass::HeavyOverwriting => "Heavy overwriting",
            ScenarioClass::IoIntensive => "IO-intensive",
            ScenarioClass::CpuIntensive => "CPU-intensive",
            ScenarioClass::NormalApp => "Normal App",
        }
    }
}

impl std::fmt::Display for ScenarioClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One row of Table I: an optional background app combined with an optional
/// ransomware, assigned to the training or testing split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Scenario {
    /// Background-application category.
    pub class: ScenarioClass,
    /// Background application, if any.
    pub app: Option<AppKind>,
    /// Ransomware, if any.
    pub ransomware: Option<RansomwareKind>,
    /// `true` for the training split.
    pub training: bool,
}

impl Scenario {
    /// A human-readable row label, e.g. `"IOMeter (IOStress) + CryptoShield"`.
    pub fn name(&self) -> String {
        match (self.app, self.ransomware) {
            (Some(a), Some(r)) => format!("{a} + {r}"),
            (Some(a), None) => a.to_string(),
            (None, Some(r)) => format!("{r} (ransom only)"),
            (None, None) => "idle".to_string(),
        }
    }

    /// Builds the scenario's merged trace.
    ///
    /// The background app runs for all of `duration`; the ransomware (if
    /// any) starts at a seeded-random point in the first third and runs to
    /// the end, slowed by the app's contention factor. Each distinct `seed`
    /// yields an independent run (the paper repeats each combination 20×).
    pub fn build(&self, seed: u64, duration: SimTime) -> ScenarioTrace {
        self.build_with_space(seed, duration, &FileSpaceConfig::default())
    }

    /// [`Scenario::build`] with an explicit file-space configuration (e.g. a
    /// smaller space for FTL-replay experiments).
    pub fn build_with_space(
        &self,
        seed: u64,
        duration: SimTime,
        space_cfg: &FileSpaceConfig,
    ) -> ScenarioTrace {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let space = FileSpace::generate(&mut rng, space_cfg);

        let mut parts = Vec::new();
        if let Some(app) = self.app {
            parts.push(app.model().generate(&mut rng, &space, duration));
        }
        let mut ransom_trace = None;
        let active = self.ransomware.map(|kind| {
            let third = duration.as_micros() / 3;
            let start_us = if third > 0 {
                rng.random_range(0..third)
            } else {
                0
            };
            let start = SimTime::from_micros(start_us);
            let slowdown = self.app.map_or(1.0, AppKind::ransomware_slowdown);
            let model = kind.model().starting_at(start).slowed_by(slowdown);
            let trace = model.generate(&mut rng, &space, duration.saturating_sub(start));
            // An empty trace (degenerate duration) must not invert the period.
            let end = trace.duration().plus_micros(1).max(start.plus_micros(1));
            parts.push(trace.clone());
            ransom_trace = Some(trace);
            ActivePeriod { start, end }
        });

        ScenarioTrace {
            scenario: *self,
            trace: merge(parts),
            active,
            ransom_trace,
            space,
        }
    }
}

/// A built scenario run: the merged trace, the ransomware's active period
/// (if any), and the file space it ran against.
#[derive(Debug, Clone)]
pub struct ScenarioTrace {
    /// The scenario this run realizes.
    pub scenario: Scenario,
    /// Merged, time-ordered request stream.
    pub trace: Trace,
    /// When the ransomware was active (None for benign runs).
    pub active: Option<ActivePeriod>,
    /// The ransomware's own requests (subset of `trace`), for precise
    /// per-slice training labels.
    pub ransom_trace: Option<Trace>,
    /// The file layout used.
    pub space: FileSpace,
}

impl ScenarioTrace {
    /// Ground-truth label for a time slice: was ransomware active then?
    pub fn label(&self, slice_idx: u64, slice: SimTime) -> bool {
        self.active
            .is_some_and(|p| p.overlaps_slice(slice_idx, slice))
    }

    /// The slices in which the ransomware actually issued destructive I/O.
    ///
    /// Training labels come from this rather than from the coarse
    /// [`ActivePeriod`]: a slowed ransomware idles between file bursts, and
    /// labeling those background-only slices positive teaches the tree that
    /// pure background traffic is malicious (a major false-alarm source).
    pub fn ransom_activity_slices(&self, slice: SimTime) -> std::collections::HashSet<u64> {
        self.ransom_trace
            .iter()
            .flat_map(|t| t.iter())
            .filter(|r| r.mode.is_destructive())
            .map(|r| r.time.slice_index(slice))
            .collect()
    }
}

fn row(
    class: ScenarioClass,
    app: Option<AppKind>,
    ransomware: Option<RansomwareKind>,
    training: bool,
) -> Scenario {
    Scenario {
        class,
        app,
        ransomware,
        training,
    }
}

/// The full Table I matrix: 13 training rows and 12 testing rows.
///
/// As in the paper, no ransomware family used for training appears in the
/// test split, so test results measure detection of *unknown* ransomware.
pub fn table1() -> Vec<Scenario> {
    use AppKind as A;
    use RansomwareKind as R;
    use ScenarioClass as C;
    vec![
        // ---- training ----
        row(C::RansomOnly, None, Some(R::LockyBbs), true),
        row(C::HeavyOverwriting, Some(A::DataWiping), None, true),
        row(C::HeavyOverwriting, Some(A::Database), None, true),
        row(C::HeavyOverwriting, Some(A::CloudStorage), None, true),
        row(C::IoIntensive, Some(A::DiskMark), Some(R::ZerberUfb), true),
        row(C::IoIntensive, Some(A::IoMeter), Some(R::ZerberUfb), true),
        row(C::IoIntensive, Some(A::HdTunePro), Some(R::ZerberUfb), true),
        row(C::NormalApp, Some(A::Install), Some(R::LockyBdf), true),
        row(C::NormalApp, Some(A::WebSurfing), Some(R::LockyBbs), true),
        row(C::NormalApp, Some(A::OutlookSync), Some(R::LockyBdf), true),
        row(
            C::NormalApp,
            Some(A::WindowsUpdate),
            Some(R::LockyBdf),
            true,
        ),
        row(C::NormalApp, Some(A::P2pDownload), None, true),
        row(C::NormalApp, Some(A::SqliteApp), None, true),
        // ---- testing ----
        row(C::RansomOnly, None, Some(R::WannaCry), false),
        row(
            C::HeavyOverwriting,
            Some(A::CloudStorage),
            Some(R::InHouseOutPlace),
            false,
        ),
        row(
            C::HeavyOverwriting,
            Some(A::DataWiping),
            Some(R::GlobeImposter),
            false,
        ),
        row(
            C::HeavyOverwriting,
            Some(A::Database),
            Some(R::InHouseInPlace),
            false,
        ),
        row(
            C::IoIntensive,
            Some(A::IoMeter),
            Some(R::CryptoShield),
            false,
        ),
        row(C::CpuIntensive, Some(A::Compression), Some(R::Mole), false),
        row(C::CpuIntensive, Some(A::VideoEncode), Some(R::Jaff), false),
        row(
            C::NormalApp,
            Some(A::Install),
            Some(R::GlobeImposter),
            false,
        ),
        row(C::NormalApp, Some(A::VideoDecode), Some(R::WannaCry), false),
        row(C::NormalApp, Some(A::OutlookSync), Some(R::Mole), false),
        row(C::NormalApp, Some(A::P2pDownload), Some(R::WannaCry), false),
        row(
            C::NormalApp,
            Some(A::WebSurfing),
            Some(R::GlobeImposter),
            false,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_the_paper_splits() {
        let rows = table1();
        assert_eq!(rows.iter().filter(|s| s.training).count(), 13);
        assert_eq!(rows.iter().filter(|s| !s.training).count(), 12);
    }

    #[test]
    fn no_training_ransomware_appears_in_testing() {
        let rows = table1();
        let train: Vec<_> = rows
            .iter()
            .filter(|s| s.training)
            .filter_map(|s| s.ransomware)
            .collect();
        let test: Vec<_> = rows
            .iter()
            .filter(|s| !s.training)
            .filter_map(|s| s.ransomware)
            .collect();
        for r in &test {
            assert!(!train.contains(r), "{r} leaks from training to testing");
        }
    }

    #[test]
    fn build_produces_sorted_trace_with_active_period() {
        let scenario = table1()
            .into_iter()
            .find(|s| !s.training && s.ransomware.is_some() && s.app.is_some())
            .unwrap();
        let run = scenario.build(99, SimTime::from_secs(20));
        assert!(!run.trace.is_empty());
        assert!(run.trace.is_sorted());
        let active = run.active.expect("scenario has ransomware");
        assert!(active.start < active.end);
        assert!(active.start <= SimTime::from_secs(7));
    }

    #[test]
    fn benign_scenarios_have_no_active_period() {
        let scenario = table1()
            .into_iter()
            .find(|s| s.ransomware.is_none())
            .unwrap();
        let run = scenario.build(1, SimTime::from_secs(10));
        assert!(run.active.is_none());
        assert!(!run.label(3, SimTime::from_secs(1)));
    }

    #[test]
    fn same_seed_reproduces_identical_runs() {
        let scenario = table1()[0];
        let a = scenario.build(5, SimTime::from_secs(10));
        let b = scenario.build(5, SimTime::from_secs(10));
        assert_eq!(a.trace.reqs(), b.trace.reqs());
        assert_eq!(a.active, b.active);
    }

    #[test]
    fn different_seeds_differ() {
        let scenario = table1()[0];
        let a = scenario.build(5, SimTime::from_secs(10));
        let b = scenario.build(6, SimTime::from_secs(10));
        assert_ne!(a.trace.reqs(), b.trace.reqs());
    }

    #[test]
    fn labels_follow_active_period() {
        let scenario = row(
            ScenarioClass::RansomOnly,
            None,
            Some(RansomwareKind::WannaCry),
            false,
        );
        let run = scenario.build(3, SimTime::from_secs(20));
        let active = run.active.unwrap();
        let slice = SimTime::from_secs(1);
        let first_active = active.start.as_micros() / 1_000_000;
        assert!(run.label(first_active, slice));
        if first_active > 0 {
            assert!(!run.label(first_active - 1, slice));
        }
    }

    #[test]
    fn scenario_names_are_informative() {
        for s in table1() {
            let n = s.name();
            assert!(!n.is_empty());
            if let Some(r) = s.ransomware {
                assert!(n.contains(r.name()));
            }
        }
    }
}
