//! # insider-workloads
//!
//! Synthetic block-I/O trace generators reproducing the workload zoo of the
//! SSD-Insider paper (Baek et al., ICDCS 2018, Table I): eight real-world
//! ransomware families plus two in-house ones, and twelve background
//! applications spanning the paper's four categories (heavy overwriting,
//! IO-intensive, CPU-intensive, normal).
//!
//! The real malware binaries are not runnable here, but the detector only
//! ever sees `(time, LBA, mode, length)` headers — so a generator that
//! reproduces each family's *header-level* behavior (read-encrypt-overwrite
//! pattern, speed, target file sizes, in-place vs. out-of-place class) is
//! indistinguishable from the real thing at the layer under test. See
//! DESIGN.md for the substitution argument.
//!
//! # Example
//!
//! ```rust
//! use insider_workloads::{FileSpace, FileSpaceConfig, RansomwareKind};
//! use insider_nand::SimTime;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let space = FileSpace::generate(&mut rng, &FileSpaceConfig::default());
//! let model = RansomwareKind::WannaCry.model();
//! let trace = model.generate(&mut rng, &space, insider_nand::SimTime::from_secs(30));
//! assert!(!trace.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adversarial;
mod apps;
mod dataset;
mod filespace;
mod mixer;
mod ransomware;
mod trace;

pub use adversarial::{AdversarialRun, AdversaryKind};
pub use apps::{AppKind, AppModel};
pub use dataset::{table1, Scenario, ScenarioClass, ScenarioTrace};
pub use filespace::{FileExtent, FileKind, FileSpace, FileSpaceConfig};
pub use mixer::merge;
pub use ransomware::{OverwriteClass, RansomwareKind, RansomwareModel};
pub use trace::{ActivePeriod, Trace};
