//! Time-ordered request traces.

use insider_detect::IoReq;
use insider_nand::SimTime;
use serde::{Deserialize, Serialize};

/// A time interval during which a ransomware was actively encrypting.
/// Slices overlapping this period are labeled positive for training and
/// scored as must-detect for FRR.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActivePeriod {
    /// Attack start.
    pub start: SimTime,
    /// Attack end (exclusive).
    pub end: SimTime,
}

impl ActivePeriod {
    /// Whether `t` falls inside the period.
    pub fn contains(&self, t: SimTime) -> bool {
        self.start <= t && t < self.end
    }

    /// Whether the time slice `[slice_idx * slice, (slice_idx+1) * slice)`
    /// overlaps the period.
    pub fn overlaps_slice(&self, slice_idx: u64, slice: SimTime) -> bool {
        let lo = SimTime::from_micros(slice_idx * slice.as_micros());
        let hi = lo + slice;
        self.start < hi && lo < self.end
    }
}

/// A time-ordered sequence of I/O request headers.
///
/// # Example
///
/// ```rust
/// use insider_workloads::Trace;
/// use insider_detect::IoReq;
/// use insider_nand::{Lba, SimTime};
///
/// let mut trace = Trace::new();
/// trace.push(IoReq::write(SimTime::from_secs(2), Lba::new(1)));
/// trace.push(IoReq::read(SimTime::from_secs(1), Lba::new(0)));
/// trace.sort(); // restore time order
/// assert_eq!(trace.len(), 2);
/// assert_eq!(trace.duration(), SimTime::from_secs(2));
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    reqs: Vec<IoReq>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// A trace from pre-built requests (not re-sorted).
    pub fn from_reqs(reqs: Vec<IoReq>) -> Self {
        Trace { reqs }
    }

    /// Appends a request.
    pub fn push(&mut self, req: IoReq) {
        self.reqs.push(req);
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.reqs.len()
    }

    /// Whether the trace holds no requests.
    pub fn is_empty(&self) -> bool {
        self.reqs.is_empty()
    }

    /// The requests in order.
    pub fn reqs(&self) -> &[IoReq] {
        &self.reqs
    }

    /// Stable-sorts requests by timestamp.
    pub fn sort(&mut self) {
        self.reqs.sort_by_key(|r| r.time);
    }

    /// Timestamp of the last request (`SimTime::ZERO` for empty traces).
    pub fn duration(&self) -> SimTime {
        self.reqs.last().map(|r| r.time).unwrap_or(SimTime::ZERO)
    }

    /// Total blocks transferred (sum of request lengths).
    pub fn total_blocks(&self) -> u64 {
        self.reqs.iter().map(|r| r.len as u64).sum()
    }

    /// Whether timestamps are non-decreasing.
    pub fn is_sorted(&self) -> bool {
        self.reqs.windows(2).all(|w| w[0].time <= w[1].time)
    }

    /// Iterates over the requests.
    pub fn iter(&self) -> impl Iterator<Item = &IoReq> {
        self.reqs.iter()
    }

    /// The same trace with every multi-sector request split into adjacent
    /// single-sector requests at the same timestamp — the pre-extent view
    /// of the workload. `scalarized()` and the original must produce
    /// identical detector features and device contents; the differential
    /// oracle tests rely on that.
    pub fn scalarized(&self) -> Trace {
        self.reqs
            .iter()
            .flat_map(|r| {
                (0..r.len as u64).map(|i| IoReq {
                    len: 1,
                    lba: r.lba.offset(i),
                    ..*r
                })
            })
            .collect()
    }
}

impl Extend<IoReq> for Trace {
    fn extend<T: IntoIterator<Item = IoReq>>(&mut self, iter: T) {
        self.reqs.extend(iter);
    }
}

impl FromIterator<IoReq> for Trace {
    fn from_iter<T: IntoIterator<Item = IoReq>>(iter: T) -> Self {
        Trace {
            reqs: iter.into_iter().collect(),
        }
    }
}

impl IntoIterator for Trace {
    type Item = IoReq;
    type IntoIter = std::vec::IntoIter<IoReq>;
    fn into_iter(self) -> Self::IntoIter {
        self.reqs.into_iter()
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a IoReq;
    type IntoIter = std::slice::Iter<'a, IoReq>;
    fn into_iter(self) -> Self::IntoIter {
        self.reqs.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insider_nand::Lba;

    #[test]
    fn sort_orders_by_time() {
        let mut t = Trace::new();
        t.push(IoReq::write(SimTime::from_secs(3), Lba::new(0)));
        t.push(IoReq::read(SimTime::from_secs(1), Lba::new(1)));
        t.sort();
        assert!(t.is_sorted());
        assert_eq!(t.reqs()[0].lba, Lba::new(1));
    }

    #[test]
    fn duration_and_blocks() {
        let t: Trace = (0..5u64)
            .map(|i| {
                IoReq::new(
                    SimTime::from_secs(i),
                    Lba::new(i),
                    insider_detect::IoMode::Write,
                    2,
                )
            })
            .collect();
        assert_eq!(t.duration(), SimTime::from_secs(4));
        assert_eq!(t.total_blocks(), 10);
    }

    #[test]
    fn scalarized_splits_extents_preserving_order_and_blocks() {
        use insider_detect::IoMode;
        let t = Trace::from_reqs(vec![
            IoReq::new(SimTime::from_secs(1), Lba::new(8), IoMode::Write, 3).with_entropy(7.9),
            IoReq::new(SimTime::from_secs(2), Lba::new(0), IoMode::Read, 1),
            IoReq::new(SimTime::from_secs(3), Lba::new(4), IoMode::Trim, 2),
        ]);
        let s = t.scalarized();
        assert_eq!(s.len(), 6);
        assert_eq!(s.total_blocks(), t.total_blocks());
        assert!(s.is_sorted());
        assert!(s.reqs().iter().all(|r| r.len == 1));
        assert_eq!(s.reqs()[0].lba, Lba::new(8));
        assert_eq!(s.reqs()[2].lba, Lba::new(10));
        assert_eq!(s.reqs()[5].lba, Lba::new(5));
        assert_eq!(s.reqs()[5].mode, IoMode::Trim);
        // Entropy stamps survive splitting (the extent-vs-scalar
        // differential oracle depends on identical entropy features).
        assert!(s.reqs()[..3].iter().all(|r| r.entropy == Some(7900)));
        assert!(s.reqs()[3..].iter().all(|r| r.entropy.is_none()));
    }

    #[test]
    fn empty_trace_defaults() {
        let t = Trace::new();
        assert!(t.is_empty());
        assert_eq!(t.duration(), SimTime::ZERO);
        assert!(t.is_sorted());
    }

    #[test]
    fn trace_serializes_round_trip() {
        let t: Trace = (0..5u64)
            .map(|i| IoReq::read(SimTime::from_millis(i * 10), Lba::new(i)))
            .collect();
        let json = serde_json::to_string(&t).unwrap();
        let back: Trace = serde_json::from_str(&json).unwrap();
        assert_eq!(back.reqs(), t.reqs());
    }

    #[test]
    fn active_period_serializes_round_trip() {
        let p = ActivePeriod {
            start: SimTime::from_millis(1500),
            end: SimTime::from_millis(3500),
        };
        let json = serde_json::to_string(&p).unwrap();
        let back: ActivePeriod = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn active_period_slice_overlap() {
        let p = ActivePeriod {
            start: SimTime::from_millis(1500),
            end: SimTime::from_millis(3500),
        };
        let slice = SimTime::from_secs(1);
        assert!(!p.overlaps_slice(0, slice));
        assert!(p.overlaps_slice(1, slice));
        assert!(p.overlaps_slice(2, slice));
        assert!(p.overlaps_slice(3, slice));
        assert!(!p.overlaps_slice(4, slice));
        assert!(p.contains(SimTime::from_secs(2)));
        assert!(!p.contains(SimTime::from_secs(4)));
    }
}
