//! Time-axis merging of traces.

use crate::trace::Trace;

/// Merges traces into one time-ordered stream.
///
/// Each input is expected to be time-sorted (all generators in this crate
/// produce sorted traces); the merge is a stable k-way interleave.
///
/// # Example
///
/// ```rust
/// use insider_workloads::{merge, Trace};
/// use insider_detect::IoReq;
/// use insider_nand::{Lba, SimTime};
///
/// let a = Trace::from_reqs(vec![IoReq::read(SimTime::from_secs(1), Lba::new(0))]);
/// let b = Trace::from_reqs(vec![IoReq::read(SimTime::from_secs(0), Lba::new(1))]);
/// let merged = merge([a, b]);
/// assert_eq!(merged.reqs()[0].lba, Lba::new(1));
/// assert!(merged.is_sorted());
/// ```
pub fn merge(traces: impl IntoIterator<Item = Trace>) -> Trace {
    let mut all = Trace::new();
    for t in traces {
        all.extend(t);
    }
    all.sort();
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use insider_detect::IoReq;
    use insider_nand::{Lba, SimTime};

    #[test]
    fn merge_preserves_all_requests_in_order() {
        let a: Trace = (0..10u64)
            .map(|i| IoReq::read(SimTime::from_millis(i * 100), Lba::new(i)))
            .collect();
        let b: Trace = (0..10u64)
            .map(|i| IoReq::write(SimTime::from_millis(i * 100 + 50), Lba::new(100 + i)))
            .collect();
        let m = merge([a, b]);
        assert_eq!(m.len(), 20);
        assert!(m.is_sorted());
    }

    #[test]
    fn merge_of_nothing_is_empty() {
        assert!(merge(std::iter::empty::<Trace>()).is_empty());
    }

    #[test]
    fn merge_is_stable_for_equal_timestamps() {
        let a = Trace::from_reqs(vec![IoReq::read(SimTime::ZERO, Lba::new(1))]);
        let b = Trace::from_reqs(vec![IoReq::read(SimTime::ZERO, Lba::new(2))]);
        let m = merge([a, b]);
        assert_eq!(m.reqs()[0].lba, Lba::new(1));
        assert_eq!(m.reqs()[1].lba, Lba::new(2));
    }
}
