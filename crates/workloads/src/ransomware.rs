//! Header-level models of the ten ransomware samples of Table I.

use crate::filespace::{FileKind, FileSpace};
use crate::trace::Trace;
use insider_detect::{IoMode, IoReq};
use insider_nand::{Lba, SimTime};

/// Entropy stamp for ciphertext writes: ~7.95 bits/byte, what AES output
/// measures under the detector's 1 KiB sampling.
pub(crate) const CIPHERTEXT_ENTROPY_MILLI: u16 = 7950;
/// Entropy stamp for the junk pass that destroys out-of-place originals
/// (random filler, marginally below fresh ciphertext).
pub(crate) const JUNK_OVERWRITE_ENTROPY_MILLI: u16 = 7900;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How a family disposes of the victim's plaintext (paper §III-A,
/// after Scaife et al.).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OverwriteClass {
    /// Class A: encrypt and overwrite the file in place.
    InPlace,
    /// Class B: write the ciphertext elsewhere, then overwrite the original.
    OutOfPlace,
    /// Class C: write the ciphertext elsewhere, then delete (trim) the
    /// original.
    DeleteThenWrite,
}

/// The ransomware families evaluated in the paper (Table I), plus the two
/// in-house samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RansomwareKind {
    /// Locky variant `.bbs` — in-place, moderate speed (training set).
    LockyBbs,
    /// Locky variant `.bdf` — in-place, moderate speed (training set).
    LockyBdf,
    /// Zerber `.ufb` — in-place, moderate speed (training set).
    ZerberUfb,
    /// WannaCry — fast, out-of-place with original overwrite (test set).
    WannaCry,
    /// Jaff — deliberately slow and dispersed; the hardest to catch per
    /// slice, caught by `PWIO` (test set).
    Jaff,
    /// Mole — fast in-place encryptor (test set).
    Mole,
    /// GlobeImposter — moderate in-place (test set).
    GlobeImposter,
    /// CryptoShield — slow in-place, low overwrite growth rate (test set).
    CryptoShield,
    /// In-house sample doing in-place update encryption.
    InHouseInPlace,
    /// In-house sample doing out-of-place update encryption.
    InHouseOutPlace,
}

impl RansomwareKind {
    /// All ten kinds.
    pub const ALL: [RansomwareKind; 10] = [
        RansomwareKind::LockyBbs,
        RansomwareKind::LockyBdf,
        RansomwareKind::ZerberUfb,
        RansomwareKind::WannaCry,
        RansomwareKind::Jaff,
        RansomwareKind::Mole,
        RansomwareKind::GlobeImposter,
        RansomwareKind::CryptoShield,
        RansomwareKind::InHouseInPlace,
        RansomwareKind::InHouseOutPlace,
    ];

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            RansomwareKind::LockyBbs => "Locky.bbs",
            RansomwareKind::LockyBdf => "Locky.bdf",
            RansomwareKind::ZerberUfb => "Zerber.ufb",
            RansomwareKind::WannaCry => "WannaCry",
            RansomwareKind::Jaff => "Jaff",
            RansomwareKind::Mole => "Mole",
            RansomwareKind::GlobeImposter => "GlobeImposter",
            RansomwareKind::CryptoShield => "CryptoShield",
            RansomwareKind::InHouseInPlace => "In-house (inplace)",
            RansomwareKind::InHouseOutPlace => "In-house (outplace)",
        }
    }

    /// The header-level behavior model for this family. Speeds are relative
    /// magnitudes consistent with the paper's Figs. 1–2 (WannaCry/Mole fast,
    /// Jaff/CryptoShield slow).
    pub fn model(self) -> RansomwareModel {
        let (class, files_per_sec) = match self {
            RansomwareKind::LockyBbs => (OverwriteClass::InPlace, 4.0),
            RansomwareKind::LockyBdf => (OverwriteClass::InPlace, 3.5),
            RansomwareKind::ZerberUfb => (OverwriteClass::InPlace, 3.0),
            RansomwareKind::WannaCry => (OverwriteClass::OutOfPlace, 10.0),
            RansomwareKind::Jaff => (OverwriteClass::InPlace, 2.0),
            RansomwareKind::Mole => (OverwriteClass::InPlace, 8.0),
            RansomwareKind::GlobeImposter => (OverwriteClass::InPlace, 3.0),
            RansomwareKind::CryptoShield => (OverwriteClass::InPlace, 0.8),
            RansomwareKind::InHouseInPlace => (OverwriteClass::InPlace, 5.0),
            RansomwareKind::InHouseOutPlace => (OverwriteClass::DeleteThenWrite, 5.0),
        };
        RansomwareModel {
            kind: self,
            class,
            files_per_sec,
            read_chunk: 8,
            start: SimTime::ZERO,
            slowdown: 1.0,
        }
    }
}

impl std::fmt::Display for RansomwareKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A parameterized generator for one family's read-encrypt-overwrite stream.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RansomwareModel {
    /// Which family this models.
    pub kind: RansomwareKind,
    /// How the plaintext is destroyed.
    pub class: OverwriteClass,
    /// Encryption throughput in victim files per second.
    pub files_per_sec: f64,
    /// Blocks per read/write request (files are processed in chunks).
    pub read_chunk: u32,
    /// When the attack begins.
    pub start: SimTime,
    /// Throughput divisor modeling CPU/IO contention (≥ 1.0); the paper's
    /// CPU- and IO-intensive background apps slow ransomware down.
    pub slowdown: f64,
}

impl RansomwareModel {
    /// Returns a copy starting at `start`.
    pub fn starting_at(mut self, start: SimTime) -> Self {
        self.start = start;
        self
    }

    /// Returns a copy slowed down by `factor` (≥ 1.0).
    ///
    /// # Panics
    ///
    /// Panics if `factor < 1.0`.
    pub fn slowed_by(mut self, factor: f64) -> Self {
        assert!(factor >= 1.0, "slowdown factor must be at least 1.0");
        self.slowdown = factor;
        self
    }

    /// Effective files encrypted per second after contention.
    pub fn effective_rate(&self) -> f64 {
        self.files_per_sec / self.slowdown
    }

    /// Generates the attack trace over `space`, running from
    /// [`start`](Self::start) for `duration`. Victims are document files in
    /// random order (without replacement until exhausted).
    pub fn generate(&self, rng: &mut impl Rng, space: &FileSpace, duration: SimTime) -> Trace {
        let mut victims: Vec<_> = space.files(FileKind::Document).copied().collect();
        victims.shuffle(rng);

        let mut trace = Trace::new();
        let end = self.start + duration;
        let mut now = self.start;
        let file_gap_us = (1e6 / self.effective_rate()) as u64;
        let mut out_cursor = space.free_start();

        for file in victims {
            if now >= end {
                break;
            }
            // Jitter the inter-file gap ±25 %.
            let gap = file_gap_us + rng.random_range(0..=file_gap_us / 2) - file_gap_us / 4;
            // Spread the file's requests over a fraction of the gap.
            let reqs_for_file = 2 * file.blocks.div_ceil(self.read_chunk) as u64 + 2;
            let step = (gap / 2 / reqs_for_file).max(1);

            // Read the whole file in chunks (the "encrypt" phase).
            now = emit_chunks(
                &mut trace,
                now,
                step,
                file.start,
                file.blocks,
                self.read_chunk,
                IoMode::Read,
                None,
            );

            // Destroy the plaintext according to class.
            match self.class {
                OverwriteClass::InPlace => {
                    now = emit_chunks(
                        &mut trace,
                        now,
                        step,
                        file.start,
                        file.blocks,
                        self.read_chunk,
                        IoMode::Write,
                        Some(CIPHERTEXT_ENTROPY_MILLI),
                    );
                }
                OverwriteClass::OutOfPlace => {
                    // Ciphertext copy to the free region…
                    now = emit_chunks(
                        &mut trace,
                        now,
                        step,
                        out_cursor,
                        file.blocks,
                        self.read_chunk,
                        IoMode::Write,
                        Some(CIPHERTEXT_ENTROPY_MILLI),
                    );
                    out_cursor = out_cursor.offset(file.blocks as u64);
                    // …then a single junk overwrite pass over the original.
                    now = emit_chunks(
                        &mut trace,
                        now,
                        step,
                        file.start,
                        file.blocks,
                        self.read_chunk,
                        IoMode::Write,
                        Some(JUNK_OVERWRITE_ENTROPY_MILLI),
                    );
                }
                OverwriteClass::DeleteThenWrite => {
                    // Ciphertext copy to the free region…
                    now = emit_chunks(
                        &mut trace,
                        now,
                        step,
                        out_cursor,
                        file.blocks,
                        self.read_chunk,
                        IoMode::Write,
                        Some(CIPHERTEXT_ENTROPY_MILLI),
                    );
                    out_cursor = out_cursor.offset(file.blocks as u64);
                    // …then trim the original away (trims carry no payload).
                    trace.push(IoReq::new(now, file.start, IoMode::Trim, file.blocks));
                    now = now.plus_micros(step);
                }
            }

            // Idle until the next victim.
            now = now.plus_micros(gap / 2);
        }
        trace
    }
}

/// Emits `[start, start+blocks)` as `chunk`-block requests of `mode` with
/// an optional payload-entropy stamp, `step` microseconds apart; returns
/// the advanced clock.
#[allow(clippy::too_many_arguments)]
fn emit_chunks(
    trace: &mut Trace,
    mut now: SimTime,
    step: u64,
    start: Lba,
    blocks: u32,
    chunk: u32,
    mode: IoMode,
    entropy_milli: Option<u16>,
) -> SimTime {
    let mut offset = 0u32;
    while offset < blocks {
        let len = chunk.min(blocks - offset);
        let mut req = IoReq::new(now, start.offset(offset as u64), mode, len);
        if let Some(milli) = entropy_milli {
            req = req.with_entropy_milli(milli);
        }
        trace.push(req);
        now = now.plus_micros(step);
        offset += len;
    }
    now
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filespace::FileSpaceConfig;
    use rand::SeedableRng;

    fn setup() -> (rand::rngs::StdRng, FileSpace) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let space = FileSpace::generate(&mut rng, &FileSpaceConfig::default());
        (rng, space)
    }

    #[test]
    fn every_kind_generates_nonempty_sorted_traces() {
        let (mut rng, space) = setup();
        for kind in RansomwareKind::ALL {
            let trace = kind
                .model()
                .generate(&mut rng, &space, SimTime::from_secs(20));
            assert!(!trace.is_empty(), "{kind} produced an empty trace");
            assert!(trace.is_sorted(), "{kind} trace out of order");
        }
    }

    #[test]
    fn in_place_overwrites_every_read_block() {
        let (mut rng, space) = setup();
        let trace = RansomwareKind::Mole
            .model()
            .generate(&mut rng, &space, SimTime::from_secs(10));
        use std::collections::HashSet;
        let mut read: HashSet<u64> = HashSet::new();
        let mut written: HashSet<u64> = HashSet::new();
        for req in &trace {
            for lba in req.blocks() {
                match req.mode {
                    IoMode::Read => {
                        read.insert(lba.index());
                    }
                    IoMode::Write => {
                        written.insert(lba.index());
                    }
                    IoMode::Trim => {}
                }
            }
        }
        assert!(!read.is_empty());
        assert!(
            read.is_subset(&written),
            "in-place ransomware must overwrite everything it read"
        );
    }

    #[test]
    fn out_of_place_writes_to_free_region_and_original() {
        let (mut rng, space) = setup();
        let trace =
            RansomwareKind::WannaCry
                .model()
                .generate(&mut rng, &space, SimTime::from_secs(5));
        let free = space.free_start().index();
        let wrote_free = trace
            .iter()
            .any(|r| r.mode == IoMode::Write && r.lba.index() >= free);
        let wrote_used = trace
            .iter()
            .any(|r| r.mode == IoMode::Write && r.lba.index() < free);
        assert!(wrote_free, "ciphertext copy must land in the free region");
        assert!(wrote_used, "original must be overwritten");
    }

    #[test]
    fn delete_class_trims_originals() {
        let (mut rng, space) = setup();
        let trace = RansomwareKind::InHouseOutPlace.model().generate(
            &mut rng,
            &space,
            SimTime::from_secs(5),
        );
        assert!(trace.iter().any(|r| r.mode == IoMode::Trim));
    }

    #[test]
    fn ciphertext_writes_carry_high_entropy_stamps() {
        let (mut rng, space) = setup();
        for kind in [
            RansomwareKind::Mole,
            RansomwareKind::WannaCry,
            RansomwareKind::InHouseOutPlace,
        ] {
            let trace = kind
                .model()
                .generate(&mut rng, &space, SimTime::from_secs(10));
            for req in &trace {
                match req.mode {
                    IoMode::Write => assert!(
                        req.entropy >= Some(JUNK_OVERWRITE_ENTROPY_MILLI),
                        "{kind}: write {req} not stamped as ciphertext"
                    ),
                    IoMode::Read | IoMode::Trim => {
                        assert_eq!(req.entropy, None, "{kind}: {req} has no payload")
                    }
                }
            }
        }
    }

    #[test]
    fn fast_families_touch_more_blocks_than_slow_ones() {
        let (mut rng, space) = setup();
        let dur = SimTime::from_secs(15);
        let fast = RansomwareKind::WannaCry
            .model()
            .generate(&mut rng, &space, dur);
        let slow = RansomwareKind::Jaff.model().generate(&mut rng, &space, dur);
        assert!(
            fast.total_blocks() > 3 * slow.total_blocks(),
            "WannaCry ({}) must far outpace Jaff ({})",
            fast.total_blocks(),
            slow.total_blocks()
        );
    }

    #[test]
    fn slowdown_reduces_throughput() {
        let (mut rng, space) = setup();
        let dur = SimTime::from_secs(15);
        let normal = RansomwareKind::Mole.model().generate(&mut rng, &space, dur);
        let slowed = RansomwareKind::Mole
            .model()
            .slowed_by(4.0)
            .generate(&mut rng, &space, dur);
        assert!(normal.total_blocks() > slowed.total_blocks());
    }

    #[test]
    fn start_offset_shifts_first_request() {
        let (mut rng, space) = setup();
        let trace = RansomwareKind::Mole
            .model()
            .starting_at(SimTime::from_secs(30))
            .generate(&mut rng, &space, SimTime::from_secs(5));
        assert!(trace.reqs()[0].time >= SimTime::from_secs(30));
    }

    #[test]
    #[should_panic(expected = "at least 1.0")]
    fn invalid_slowdown_panics() {
        RansomwareKind::Mole.model().slowed_by(0.5);
    }
}
