//! A synthetic layout of user files over the logical block space.
//!
//! Workload generators need somewhere to aim their I/O. `FileSpace` lays out
//! documents, media files, a database region and system files across the
//! LBA range, with a free region at the tail for out-of-place writers
//! (class-B ransomware, downloads, archive output).

use insider_nand::Lba;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Category of a synthetic file, which decides who targets it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FileKind {
    /// User documents and images — ransomware's primary target.
    Document,
    /// Large media files (video) — read by players/encoders.
    Media,
    /// OS/system files — touched by installs and updates.
    System,
    /// Database/PST region — hot random read-modify-write.
    Database,
}

/// One contiguous file extent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileExtent {
    /// First LBA of the file.
    pub start: Lba,
    /// Length in 4-KiB blocks.
    pub blocks: u32,
    /// What kind of file lives here.
    pub kind: FileKind,
}

impl FileExtent {
    /// Exclusive end LBA.
    pub fn end(&self) -> Lba {
        self.start.offset(self.blocks as u64)
    }
}

/// Configuration for [`FileSpace::generate`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FileSpaceConfig {
    /// Total logical blocks available (must exceed the laid-out files).
    pub total_blocks: u64,
    /// Number of document files.
    pub documents: usize,
    /// Document size range in blocks (4 KiB each); sampled log-uniformly.
    pub doc_blocks: (u32, u32),
    /// Number of media files.
    pub media: usize,
    /// Media size range in blocks.
    pub media_blocks: (u32, u32),
    /// Number of system files.
    pub system: usize,
    /// System-file size range in blocks.
    pub system_blocks: (u32, u32),
    /// Size of the database region in blocks.
    pub database_blocks: u32,
}

impl Default for FileSpaceConfig {
    fn default() -> Self {
        // Sized like the paper's 512 GB prototype drive: detection
        // experiments observe headers only, so the space does not need to
        // fit on a simulated device — and random-I/O workloads (IOMeter,
        // BitTorrent) only look realistic when the space is large enough
        // that random writes rarely collide with recently read blocks
        // (on a small space, stress tools degenerate into pure-overwrite
        // workloads no detector could tell from ransomware).
        FileSpaceConfig {
            total_blocks: 125_000_000,
            documents: 120,
            doc_blocks: (4, 128), // 16 KiB – 512 KiB
            media: 4,
            media_blocks: (512, 2048), // 2 MiB – 8 MiB
            system: 40,
            system_blocks: (2, 32),
            database_blocks: 65_536, // 256 MiB
        }
    }
}

/// The laid-out logical block space.
///
/// # Example
///
/// ```rust
/// use insider_workloads::{FileSpace, FileSpaceConfig, FileKind};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let space = FileSpace::generate(&mut rng, &FileSpaceConfig::default());
/// assert!(space.files(FileKind::Document).count() > 0);
/// assert!(space.free_start().index() < space.total_blocks());
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FileSpace {
    files: Vec<FileExtent>,
    free_start: Lba,
    total_blocks: u64,
}

fn log_uniform(rng: &mut impl Rng, range: (u32, u32)) -> u32 {
    let (lo, hi) = range;
    assert!(lo >= 1 && hi >= lo, "invalid size range");
    if lo == hi {
        return lo;
    }
    let (llo, lhi) = ((lo as f64).ln(), (hi as f64).ln());
    let v = (llo + rng.random::<f64>() * (lhi - llo)).exp();
    (v.round() as u32).clamp(lo, hi)
}

impl FileSpace {
    /// Lays files out sequentially with small random gaps.
    ///
    /// # Panics
    ///
    /// Panics if the configured files do not fit in `total_blocks`.
    pub fn generate(rng: &mut impl Rng, config: &FileSpaceConfig) -> Self {
        let mut files = Vec::new();
        let mut cursor: u64 = 64; // leave room for "boot/metadata" blocks

        fn place<R: Rng>(
            rng: &mut R,
            cursor: &mut u64,
            count: usize,
            size: (u32, u32),
            kind: FileKind,
            files: &mut Vec<FileExtent>,
        ) {
            for _ in 0..count {
                let blocks = log_uniform(rng, size);
                files.push(FileExtent {
                    start: Lba::new(*cursor),
                    blocks,
                    kind,
                });
                // Small inter-file gap models metadata/slack.
                *cursor += blocks as u64 + rng.random_range(0..4u64);
            }
        }

        place(
            rng,
            &mut cursor,
            config.documents,
            config.doc_blocks,
            FileKind::Document,
            &mut files,
        );
        place(
            rng,
            &mut cursor,
            config.media,
            config.media_blocks,
            FileKind::Media,
            &mut files,
        );
        place(
            rng,
            &mut cursor,
            config.system,
            config.system_blocks,
            FileKind::System,
            &mut files,
        );
        files.push(FileExtent {
            start: Lba::new(cursor),
            blocks: config.database_blocks,
            kind: FileKind::Database,
        });
        cursor += config.database_blocks as u64;

        assert!(
            cursor < config.total_blocks,
            "file layout ({cursor} blocks) exceeds configured space ({})",
            config.total_blocks
        );
        FileSpace {
            files,
            free_start: Lba::new(cursor),
            total_blocks: config.total_blocks,
        }
    }

    /// All extents of a given kind.
    pub fn files(&self, kind: FileKind) -> impl Iterator<Item = &FileExtent> {
        self.files.iter().filter(move |f| f.kind == kind)
    }

    /// All extents.
    pub fn all_files(&self) -> &[FileExtent] {
        &self.files
    }

    /// A uniformly random extent of `kind`.
    ///
    /// # Panics
    ///
    /// Panics if no file of that kind exists.
    pub fn pick(&self, rng: &mut impl Rng, kind: FileKind) -> FileExtent {
        let candidates: Vec<&FileExtent> = self.files(kind).collect();
        assert!(!candidates.is_empty(), "no files of kind {kind:?}");
        *candidates[rng.random_range(0..candidates.len())]
    }

    /// First LBA of the unoccupied tail region.
    pub fn free_start(&self) -> Lba {
        self.free_start
    }

    /// Total logical blocks in the space.
    pub fn total_blocks(&self) -> u64 {
        self.total_blocks
    }

    /// Number of free blocks in the tail region.
    pub fn free_blocks(&self) -> u64 {
        self.total_blocks - self.free_start.index()
    }

    /// The database region (always present).
    pub fn database(&self) -> FileExtent {
        *self
            .files
            .iter()
            .find(|f| f.kind == FileKind::Database)
            .expect("database region is always laid out")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn space() -> FileSpace {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        FileSpace::generate(&mut rng, &FileSpaceConfig::default())
    }

    #[test]
    fn generates_all_kinds() {
        let s = space();
        for kind in [
            FileKind::Document,
            FileKind::Media,
            FileKind::System,
            FileKind::Database,
        ] {
            assert!(s.files(kind).count() > 0, "missing kind {kind:?}");
        }
    }

    #[test]
    fn extents_do_not_overlap() {
        let s = space();
        let mut files = s.all_files().to_vec();
        files.sort_by_key(|f| f.start);
        for w in files.windows(2) {
            assert!(w[0].end() <= w[1].start, "{:?} overlaps {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn free_region_is_nonempty_and_after_files() {
        let s = space();
        assert!(s.free_blocks() > 0);
        for f in s.all_files() {
            assert!(f.end() <= s.free_start());
        }
    }

    #[test]
    fn sizes_respect_ranges() {
        let s = space();
        let cfg = FileSpaceConfig::default();
        for f in s.files(FileKind::Document) {
            assert!(f.blocks >= cfg.doc_blocks.0 && f.blocks <= cfg.doc_blocks.1);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mut a = rand::rngs::StdRng::seed_from_u64(9);
        let mut b = rand::rngs::StdRng::seed_from_u64(9);
        let cfg = FileSpaceConfig::default();
        let sa = FileSpace::generate(&mut a, &cfg);
        let sb = FileSpace::generate(&mut b, &cfg);
        assert_eq!(sa.all_files(), sb.all_files());
    }

    #[test]
    fn pick_returns_requested_kind() {
        let s = space();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..20 {
            assert_eq!(
                s.pick(&mut rng, FileKind::Document).kind,
                FileKind::Document
            );
        }
    }

    #[test]
    fn log_uniform_stays_in_range() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = log_uniform(&mut rng, (4, 128));
            assert!((4..=128).contains(&v));
        }
        assert_eq!(log_uniform(&mut rng, (7, 7)), 7);
    }
}
