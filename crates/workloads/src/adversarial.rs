//! Adversarial ransomware variants designed to evade the paper's detector.
//!
//! The Table I zoo reproduces *observed* ransomware. This module models an
//! adaptive adversary who knows the defense: the 1 s feature slices, the
//! ~10 s counting-table overwrite window, and the 3-of-10 vote threshold.
//! Each family attacks one of those assumptions:
//!
//! * [`AdversaryKind::Throttled`] — encrypts at full speed for under one
//!   slice, then idles longer than the vote window. At most one positive
//!   vote is ever in flight, so the baseline score never reaches the alarm
//!   threshold.
//! * [`AdversaryKind::SleepOverwrite`] — reads victims (leaving each
//!   file's header block untouched so adjacent files' read runs cannot
//!   merge and refresh each other), sleeps past the counting-table window
//!   so the runs expire, then overwrites. The baseline sees pure writes
//!   (`OWIO = 0`).
//! * [`AdversaryKind::Mimicry`] — the sleep-overwrite trick at a trickle
//!   pace, hidden inside cloud-sync cover traffic whose bulk uploads are
//!   also high-entropy (but target fresh LBAs).
//! * [`AdversaryKind::MultiProcess`] — several staggered sleep-overwrite
//!   workers on disjoint LBA regions, each individually below any
//!   single-stream rate threshold.
//!
//! All families carry ciphertext entropy stamps, so the evolved detector
//! features (`WENT`/`RHEW`/`OWBURST`, see `insider-detect`) have something
//! to key on: every family must still *read* plaintext and *write*
//! high-entropy data over previously accessed blocks — that conjunction is
//! what `RHEW` measures, and it does not expire with the counting table.
//! DESIGN.md §14 gives the full taxonomy and the ROC methodology.

use crate::apps::AppKind;
use crate::filespace::{FileExtent, FileKind, FileSpace, FileSpaceConfig};
use crate::mixer::merge;
use crate::ransomware::CIPHERTEXT_ENTROPY_MILLI;
use crate::trace::Trace;
use insider_detect::{IoMode, IoReq};
use insider_nand::{Lba, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Encryption chunk size in blocks (32 KiB), matching the zoo's I/O grain.
const CHUNK_BLOCKS: u32 = 8;

/// How long sleep-based families wait between reading a block and
/// overwriting it. Chosen just past the detector's 10 s counting-table
/// window so the read runs have always expired when the overwrite lands.
const HOLDOFF_US: u64 = 12_000_000;

/// The adversarial attack families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AdversaryKind {
    /// Burst-encrypts for under one slice per 11 s period.
    Throttled,
    /// Reads victims, waits out the overwrite window, then overwrites.
    SleepOverwrite,
    /// Trickle-paced sleep-overwrite hidden in cloud-sync cover traffic.
    Mimicry,
    /// Four staggered sleep-overwrite workers on disjoint LBA regions.
    MultiProcess,
}

impl AdversaryKind {
    /// Every family, in presentation order.
    pub const ALL: [AdversaryKind; 4] = [
        AdversaryKind::Throttled,
        AdversaryKind::SleepOverwrite,
        AdversaryKind::Mimicry,
        AdversaryKind::MultiProcess,
    ];

    /// Stable machine-readable name (used in benchmark JSON keys).
    pub fn name(self) -> &'static str {
        match self {
            AdversaryKind::Throttled => "throttled",
            AdversaryKind::SleepOverwrite => "sleep-overwrite",
            AdversaryKind::Mimicry => "mimicry",
            AdversaryKind::MultiProcess => "multi-process",
        }
    }

    /// Builds one seeded run of this family over a default file space.
    pub fn build(self, seed: u64, duration: SimTime) -> AdversarialRun {
        self.build_with_space(seed, duration, &FileSpaceConfig::default())
    }

    /// [`AdversaryKind::build`] with an explicit file-space configuration.
    pub fn build_with_space(
        self,
        seed: u64,
        duration: SimTime,
        space_cfg: &FileSpaceConfig,
    ) -> AdversarialRun {
        let mut rng = StdRng::seed_from_u64(seed);
        let space = FileSpace::generate(&mut rng, space_cfg);
        let (attack, cover) = match self {
            AdversaryKind::Throttled => (throttled(&mut rng, &space, duration), None),
            AdversaryKind::SleepOverwrite => (sleep_overwrite(&mut rng, &space, duration), None),
            AdversaryKind::Mimicry => {
                let cover = AppKind::CloudStorage
                    .model()
                    .generate(&mut rng, &space, duration);
                (mimicry(&mut rng, &space, duration), Some(cover))
            }
            AdversaryKind::MultiProcess => (multi_process(&mut rng, &space, duration), None),
        };
        let start = attack
            .reqs()
            .first()
            .map(|r| r.time)
            .unwrap_or(SimTime::ZERO);
        let mut parts = vec![attack.clone()];
        parts.extend(cover);
        AdversarialRun {
            kind: self,
            trace: merge(parts),
            attack,
            start,
        }
    }
}

impl std::fmt::Display for AdversaryKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One built adversarial run: the full request stream (attack plus any
/// cover traffic), the attack-only subset for ground-truth labels, and the
/// attack start time for detection-latency accounting.
#[derive(Debug, Clone)]
pub struct AdversarialRun {
    /// Which family this run realizes.
    pub kind: AdversaryKind,
    /// Merged, time-ordered request stream fed to the detector.
    pub trace: Trace,
    /// The adversary's own requests (subset of `trace`).
    pub attack: Trace,
    /// Timestamp of the adversary's first request.
    pub start: SimTime,
}

impl AdversarialRun {
    /// The slices in which the adversary issued destructive I/O — the
    /// positive labels for detector training and latency scoring.
    pub fn attack_activity_slices(&self, slice: SimTime) -> std::collections::HashSet<u64> {
        self.attack
            .iter()
            .filter(|r| r.mode.is_destructive())
            .map(|r| r.time.slice_index(slice))
            .collect()
    }
}

/// The document extents split into read/overwrite chunks, in layout order.
fn doc_chunks(space: &FileSpace) -> Vec<(Lba, u32)> {
    let mut chunks = Vec::new();
    for doc in space.files(FileKind::Document) {
        let mut off = 0;
        while off < doc.blocks {
            let len = CHUNK_BLOCKS.min(doc.blocks - off);
            chunks.push((doc.start.offset(off as u64), len));
            off += len;
        }
    }
    chunks
}

/// One document's chunks with the first block skipped. The sleep-based
/// families leave each file's header block intact (real families do the
/// same to keep magic bytes valid), and the skip is also what makes their
/// evasion work: documents can be laid out back-to-back, and the counting
/// table eagerly merges *adjacent* read runs, re-bucketing the merged run
/// to the newest read's slice. Whole-file sequential reads would therefore
/// chain every victim into one immortal run that never expires — the
/// untouched header block guarantees a gap between files' runs, so each
/// run ages out on its own 10 s clock.
fn headerless_chunks(doc: &FileExtent) -> Vec<(Lba, u32)> {
    let mut chunks = Vec::new();
    let mut off = 1;
    while off < doc.blocks {
        let len = CHUNK_BLOCKS.min(doc.blocks - off);
        chunks.push((doc.start.offset(off as u64), len));
        off += len;
    }
    chunks
}

fn push_read(trace: &mut Trace, t: SimTime, lba: Lba, len: u32) {
    trace.push(IoReq::new(t, lba, IoMode::Read, len));
}

fn push_ciphertext(trace: &mut Trace, t: SimTime, lba: Lba, len: u32) {
    trace.push(IoReq::new(t, lba, IoMode::Write, len).with_entropy_milli(CIPHERTEXT_ENTROPY_MILLI));
}

/// Full-rate read-then-overwrite bursts of ~100 ms, one per 11 s period.
/// Each burst is a textbook positive slice, but with ten-plus idle slices
/// between bursts the 10-slice vote window never holds more than one vote.
fn throttled(rng: &mut StdRng, space: &FileSpace, duration: SimTime) -> Trace {
    const PERIOD_US: u64 = 11_000_000;
    const BURST_BLOCKS: u32 = 96;
    let chunks = doc_chunks(space);
    let mut trace = Trace::new();
    let mut burst_start = SimTime::from_secs(1).plus_micros(rng.random_range(0..500_000u64));
    let mut next = 0;
    while burst_start < duration && next < chunks.len() {
        let mut blocks = 0;
        let mut t = burst_start;
        while blocks < BURST_BLOCKS && next < chunks.len() {
            let (lba, len) = chunks[next];
            next += 1;
            push_read(&mut trace, t, lba, len);
            push_ciphertext(&mut trace, t.plus_micros(2_000), lba, len);
            t = t.plus_micros(6_000);
            blocks += len;
        }
        burst_start = burst_start.plus_micros(PERIOD_US + rng.random_range(0..300_000u64));
    }
    trace.sort();
    trace
}

/// A pipelined worker that reads each document quickly (header excluded,
/// see [`headerless_chunks`]), then overwrites it [`HOLDOFF_US`] after the
/// file's *last* read — so the file's merged read run, whose last-touch
/// slice is that final read, has always expired when the overwrites land.
/// Reads of later files interleave with overwrites of earlier ones.
fn sleep_overwrite_worker(
    trace: &mut Trace,
    docs: &[FileExtent],
    start: SimTime,
    duration: SimTime,
    inter_file_us: u64,
    write_pace_us: u64,
) {
    let mut file_start = start;
    for doc in docs {
        if file_start >= duration {
            break;
        }
        let chunks = headerless_chunks(doc);
        let mut rt = file_start;
        let mut last_read = file_start;
        for &(lba, len) in &chunks {
            if rt < duration {
                push_read(trace, rt, lba, len);
                last_read = rt;
            }
            rt = rt.plus_micros(1_000);
        }
        let mut wt = last_read.plus_micros(HOLDOFF_US);
        for &(lba, len) in &chunks {
            if wt < duration {
                push_ciphertext(trace, wt, lba, len);
            }
            wt = wt.plus_micros(write_pace_us);
        }
        file_start = file_start.plus_micros(inter_file_us);
    }
}

/// One sleep-overwrite stream across every document, one file per 2 s.
fn sleep_overwrite(rng: &mut StdRng, space: &FileSpace, duration: SimTime) -> Trace {
    let docs: Vec<FileExtent> = space.files(FileKind::Document).copied().collect();
    let start = SimTime::from_secs(1).plus_micros(rng.random_range(0..500_000u64));
    let mut trace = Trace::new();
    sleep_overwrite_worker(&mut trace, &docs, start, duration, 2_000_000, 20_000);
    trace.sort();
    trace
}

/// Trickle-paced sleep-overwrite: one chunk read per 400 ms, each file's
/// overwrites starting [`HOLDOFF_US`] after that file's last trickled read
/// — a handful of write I/Os per slice, buried in the cloud-sync cover
/// traffic the caller merges in. A file's chunks are adjacent and merge
/// into one run whose last touch is the final chunk's read, so the holdoff
/// must anchor there, not at each chunk's own read.
fn mimicry(rng: &mut StdRng, space: &FileSpace, duration: SimTime) -> Trace {
    const PACE_US: u64 = 400_000;
    let mut trace = Trace::new();
    let mut t = SimTime::from_secs(1).plus_micros(rng.random_range(0..500_000u64));
    'docs: for doc in space.files(FileKind::Document) {
        let chunks = headerless_chunks(doc);
        let mut last_read = t;
        for &(lba, len) in &chunks {
            if t >= duration {
                break 'docs;
            }
            push_read(&mut trace, t, lba, len);
            last_read = t;
            t = t.plus_micros(PACE_US);
        }
        let mut wt = last_read.plus_micros(HOLDOFF_US);
        for &(lba, len) in &chunks {
            if wt < duration {
                push_ciphertext(&mut trace, wt, lba, len);
            }
            wt = wt.plus_micros(PACE_US);
        }
    }
    trace.sort();
    trace
}

/// Four staggered sleep-overwrite workers, each confined to its own quarter
/// of the document list (disjoint LBA regions, since documents are laid out
/// sequentially) and each slower than the single-stream variant.
fn multi_process(rng: &mut StdRng, space: &FileSpace, duration: SimTime) -> Trace {
    const WORKERS: usize = 4;
    let docs: Vec<FileExtent> = space.files(FileKind::Document).copied().collect();
    let per = docs.len().div_ceil(WORKERS);
    let mut trace = Trace::new();
    for (w, region) in docs.chunks(per).enumerate() {
        let start = SimTime::from_secs(1)
            .plus_micros(w as u64 * 2_750_000 + rng.random_range(0..500_000u64));
        sleep_overwrite_worker(&mut trace, region, start, duration, 4_000_000, 50_000);
    }
    trace.sort();
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use insider_detect::HIGH_ENTROPY_MILLI;
    use std::collections::HashMap;

    const DURATION: SimTime = SimTime::from_secs(60);

    #[test]
    fn every_family_builds_a_stamped_sorted_run() {
        for kind in AdversaryKind::ALL {
            let run = kind.build(7, DURATION);
            assert!(!run.attack.is_empty(), "{kind}: empty attack");
            assert!(run.trace.is_sorted(), "{kind}: unsorted trace");
            assert!(run.attack.is_sorted(), "{kind}: unsorted attack");
            assert!(run.trace.len() >= run.attack.len());
            assert_eq!(run.start, run.attack.reqs()[0].time);
            for r in run.attack.iter() {
                match r.mode {
                    IoMode::Write => assert!(
                        r.entropy >= Some(HIGH_ENTROPY_MILLI),
                        "{kind}: unstamped ciphertext write"
                    ),
                    IoMode::Read => assert_eq!(r.entropy, None),
                    IoMode::Trim => panic!("{kind}: adversaries do not trim"),
                }
            }
            assert!(
                !run.attack_activity_slices(SimTime::from_secs(1)).is_empty(),
                "{kind}: no destructive slices"
            );
        }
    }

    #[test]
    fn throttled_leaves_vote_window_gaps() {
        let run = AdversaryKind::Throttled.build(3, DURATION);
        let slice = SimTime::from_secs(1);
        let mut active: Vec<u64> = run.attack_activity_slices(slice).into_iter().collect();
        active.sort_unstable();
        assert!(active.len() >= 3, "needs several bursts to be meaningful");
        for w in active.windows(2) {
            assert!(
                w[1] - w[0] >= 11,
                "bursts {} and {} are inside one vote window",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn sleep_families_wait_out_the_counting_window() {
        for kind in [
            AdversaryKind::SleepOverwrite,
            AdversaryKind::Mimicry,
            AdversaryKind::MultiProcess,
        ] {
            let run = kind.build(5, DURATION);
            let mut last_read: HashMap<u64, SimTime> = HashMap::new();
            for r in run.attack.iter() {
                match r.mode {
                    IoMode::Read => {
                        last_read.insert(r.lba.index(), r.time);
                    }
                    IoMode::Write => {
                        let read = last_read[&r.lba.index()];
                        let gap = r.time.saturating_sub(read);
                        assert!(
                            gap.as_micros() > 10_000_000,
                            "{kind}: overwrite only {gap:?} after read"
                        );
                    }
                    IoMode::Trim => unreachable!(),
                }
            }
        }
    }

    #[test]
    fn mimicry_hides_inside_cover_traffic() {
        let run = AdversaryKind::Mimicry.build(2, DURATION);
        assert!(
            run.trace.len() > 2 * run.attack.len(),
            "cover traffic should dominate the merged trace"
        );
    }

    #[test]
    fn multi_process_workers_are_staggered() {
        let run = AdversaryKind::MultiProcess.build(4, DURATION);
        // Writes from at least three distinct regions must appear: the
        // staggered workers all get going well inside a 60 s run.
        let writes: Vec<u64> = run
            .attack
            .iter()
            .filter(|r| r.mode == IoMode::Write)
            .map(|r| r.lba.index())
            .collect();
        let lo = *writes.iter().min().unwrap();
        let hi = *writes.iter().max().unwrap();
        assert!(hi - lo > 1000, "workers should span distant LBA regions");
    }

    #[test]
    fn same_seed_reproduces_and_seeds_differ() {
        for kind in AdversaryKind::ALL {
            let a = kind.build(9, DURATION);
            let b = kind.build(9, DURATION);
            assert_eq!(a.trace.reqs(), b.trace.reqs(), "{kind}");
            let c = kind.build(10, DURATION);
            assert_ne!(a.trace.reqs(), c.trace.reqs(), "{kind}");
        }
    }
}
